// Sharded single-run execution: one worker thread per channel group.
//
// ShardedBackend executes one trace-driven run with each channel's
// controller stepped on its own executor, synchronized by a deterministic
// cross-channel time barrier:
//
//   1. advance all channels to the global next-event time,
//   2. inject the arrivals due at that instant in trace order,
//   3. step the due channel shards concurrently.
//
// The driving loop (SimService, sim/service.h) stays serial: clock
// advance, trace fetch/decode, and injection all happen on the calling
// thread, in trace order, so the sequence of (instant, injected
// transactions, due channels) is identical to the serial backend by
// construction. Only step 3 fans out: each lane owns a private
// MemoryController, Architecture replica, and SimStats sink, and every
// cross-channel accounting stream (energy buckets, fault event draws,
// Flip-N-Write RNGs) is already keyed per channel, so stepping the shards
// concurrently and folding the lanes back in channel order at finish()
// reproduces the serial books bit for bit. See DESIGN.md "Sharded
// execution & the time barrier" for the full argument.
//
// Synchronization is a gang barrier over three atomics (round epoch, done
// count, shared now); every lane-state handoff between executors rides an
// acquire/release pair on them, so the backend is clean under TSan. The
// workers persist across tick() calls — a long-lived service steps the
// same gang for its whole lifetime — and are retired by finish() (or the
// destructor, if a run is abandoned).
//
// Callers gate on jobs > 1 && channels > 1 (sim/run.h documents the
// serial-fallback rule); with a single channel there is nothing to shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "controller/controller.h"
#include "sim/backend.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace wompcm {

class ShardedBackend final : public SimBackend {
 public:
  // Spins up min(jobs, cfg.geom.channels) executors (this thread plus
  // jobs - 1 pool workers). Requires jobs >= 2 and cfg.geom.channels >= 2.
  ShardedBackend(const SimConfig& cfg, unsigned jobs);
  ~ShardedBackend() override;

  const std::string& arch_name() const override { return arch_name_; }
  unsigned num_channels() const override {
    return static_cast<unsigned>(lanes_.size());
  }

  bool can_accept(const DecodedAddr& dec) const override;
  void enqueue(const Transaction& tx) override;
  Tick next_event_after(Tick now) override;
  void tick(Tick now) override;
  bool drained() const override;
  Tick last_completion() const override;

  void fold_stream(std::uint32_t stream,
                   SimStats::StreamSlice& into) const override;

  void finish(MetricsRegistry& reg, SimResult& result) override;
  std::uint64_t worker_codec_ns() const override { return worker_codec_ns_; }

 private:
  // One channel's shard: a private controller, architecture replica, and
  // stats sink. Replica c only ever services channel c, so the lanes share
  // no mutable state — the barrier below is the only synchronization.
  struct Lane {
    std::unique_ptr<Architecture> arch;
    SimStats stats;
    std::unique_ptr<MemoryController> ctl;
  };

  // The gang barrier. A round is: coordinator publishes `now` and bumps
  // `epoch` (release); each worker acquires the bump, steps its due lanes,
  // and bumps `done` (release); the coordinator spins on `done` (acquire).
  // Those two edges carry every lane-state handoff: anything an executor
  // wrote to a lane before its release is visible to whichever executor
  // touches that lane after the matching acquire — which is also why the
  // coordinator may step a worker-owned lane inline between rounds, and
  // why the service may read lane stats between ticks.
  struct Barrier {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<unsigned> done{0};
    std::atomic<Tick> now{0};
    std::atomic<bool> stop{false};
  };

  static void wait_for_epoch(const Barrier& bar, std::uint64_t seen);
  static void wait_for_done(const Barrier& bar, unsigned workers);
  void retire_workers();

  std::string arch_name_;
  bool dispatch_all_ = false;  // reference scan mode ticks every channel
  unsigned executors_ = 0;     // coordinator + workers
  std::vector<std::unique_ptr<Lane>> lanes_;
  Barrier bar_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<std::uint64_t>> worker_codec_;
  std::uint64_t worker_codec_ns_ = 0;
  bool retired_ = false;
};

// Runs `trace` against `cfg` with min(jobs, cfg.geom.channels) executors:
// a batch SimService run over a ShardedBackend. Results are bit-identical
// to Simulator(cfg).run(trace) under every scan mode, composition, and
// fault seed. Requires jobs >= 2 and cfg.geom.channels >= 2.
SimResult run_single_sharded(const SimConfig& cfg, TraceSource& trace,
                             unsigned jobs);

}  // namespace wompcm

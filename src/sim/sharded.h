// Sharded single-run execution: one worker thread per channel group.
//
// run_single_sharded() executes one trace-driven run with each channel's
// controller stepped on its own executor, synchronized by a deterministic
// cross-channel time barrier:
//
//   1. advance all channels to the global next-event time,
//   2. inject the arrivals due at that instant in trace order,
//   3. step the due channel shards concurrently.
//
// The coordinator (the calling thread, executor 0) runs the exact serial
// event loop of sim/Simulator — clock advance, trace fetch/decode, and
// injection all stay serial and in trace order — so the sequence of
// (instant, injected transactions, due channels) is identical to the
// serial run by construction. Only step 3 fans out: each lane owns a
// private MemoryController, Architecture replica, and SimStats sink, and
// every cross-channel accounting stream (energy buckets, fault event
// draws, Flip-N-Write RNGs) is already keyed per channel, so stepping the
// shards concurrently and folding the lanes back in channel order at end
// of run reproduces the serial books bit for bit. See DESIGN.md
// "Sharded execution & the time barrier" for the full argument.
//
// Synchronization is a gang barrier over three atomics (round epoch, done
// count, shared now); every lane-state handoff between executors rides an
// acquire/release pair on them, so the runner is clean under TSan.
//
// Callers gate on jobs > 1 && channels > 1 (sim/run.h documents the
// serial-fallback rule); with a single channel there is nothing to shard.
#pragma once

#include "sim/simulator.h"
#include "trace/trace.h"

namespace wompcm {

// Runs `trace` against `cfg` with min(jobs, cfg.geom.channels) executors.
// Results are bit-identical to Simulator(cfg).run(trace) under every scan
// mode, composition, and fault seed. Requires jobs >= 2 and
// cfg.geom.channels >= 2.
SimResult run_single_sharded(const SimConfig& cfg, TraceSource& trace,
                             unsigned jobs);

}  // namespace wompcm

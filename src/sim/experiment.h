// Experiment harness: the arch x benchmark sweeps behind every figure.
//
// All benches and the reproduction tests go through these helpers so that
// "the paper configuration" is defined in exactly one place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/run.h"
#include "sim/simulator.h"
#include "trace/profiles.h"

namespace wompcm {

// The paper's default platform: 1 channel, 16 ranks, 32 banks/rank,
// 32768 rows, 2048 cols x 4 bits x 16 devices, DDR3 burst 8; PCM latencies
// 27/150/40/150 ns and a 4000 ns refresh period; <2^2>^2/3 inverted code.
SimConfig paper_config();

// The four architectures of Fig. 5, in presentation order:
// PCM (baseline), WOM-code PCM, PCM-refresh, WCPCM.
std::vector<ArchConfig> paper_architectures();

// Builds the composition cross-product {main codings} x {cache on/off} x
// {refresh kinds}, silently skipping combinations composition_valid()
// rejects (e.g. refresh=rat with no WOM-coded region). Every returned
// ArchConfig carries an explicit validated composition plus `code` for its
// WOM regions, ready to feed run_sweep() (sim/run.h).
std::vector<ArchConfig> composition_sweep(
    const std::vector<CodingKind>& main_codings,
    const std::vector<bool>& cache_options,
    const std::vector<RefreshKind>& refresh_options,
    const std::string& code = "rs23-inv");

// Normalizes a metric against column `baseline` (default: first arch).
// extract(result) must return the metric (e.g. avg write latency).
template <typename Extract>
std::vector<std::vector<double>> normalize(const std::vector<SweepRow>& rows,
                                           Extract&& extract,
                                           std::size_t baseline = 0) {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const SweepRow& row : rows) {
    const double base = extract(row.results.at(baseline));
    std::vector<double> r;
    r.reserve(row.results.size());
    for (const SimResult& res : row.results) {
      r.push_back(base > 0.0 ? extract(res) / base : 0.0);
    }
    out.push_back(std::move(r));
  }
  return out;
}

// Arithmetic mean of column `c` over all rows (the paper's "average" bars).
double column_mean(const std::vector<std::vector<double>>& m, std::size_t c);

}  // namespace wompcm

// Execution backends for the simulation service.
//
// A SimBackend is the event-stepped memory system behind one SimService
// (sim/service.h): it accepts demand transactions, answers back-pressure
// and next-event queries, and is ticked by the service's deterministic
// event loop. Two implementations exist:
//
//  - SerialBackend (backend.cc): one MemorySystem stepped inline — the
//    exact substrate of the original serial Simulator loop.
//  - ShardedBackend (sharded.h): per-channel controller lanes stepped by a
//    gang of worker threads under the PR-6 time barrier.
//
// Both produce bit-identical results under every scan mode, composition,
// and fault seed; make_backend() applies the serial-fallback rule (shard
// only for an explicit jobs > 1 on a multi-channel geometry).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/address.h"
#include "controller/transaction.h"
#include "stats/metrics.h"
#include "stats/stats.h"

namespace wompcm {

struct SimConfig;
struct SimResult;

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  virtual const std::string& arch_name() const = 0;
  virtual unsigned num_channels() const = 0;

  // Frontend back-pressure for the channel this address decodes to.
  virtual bool can_accept(const DecodedAddr& dec) const = 0;
  // Routes a demand transaction to its channel. tx.arrival must not
  // precede the latest tick.
  virtual void enqueue(const Transaction& tx) = 0;
  // Earliest future instant any channel could make progress (kNeverTick
  // when the whole system is quiescent).
  virtual Tick next_event_after(Tick now) = 0;
  // Performs all work available at `now` (monotone across calls).
  virtual void tick(Tick now) = 0;
  virtual bool drained() const = 0;
  virtual Tick last_completion() const = 0;

  // Folds the recorded per-stream slice for `stream` (a nonzero
  // Transaction::stream tag) into `into`, across every lane. Only valid
  // between ticks — the service calls it from poll(), when any workers are
  // parked at the barrier.
  virtual void fold_stream(std::uint32_t stream,
                           SimStats::StreamSlice& into) const = 0;

  // End of run: stops any workers, publishes every layer's end-of-run
  // scalars into `reg` (including "sim.end_time"), and fills
  // `result.stats` and `result.banks`. The driver keeps ownership of the
  // injection counters and of result.collect().
  virtual void finish(MetricsRegistry& reg, SimResult& result) = 0;

  // Codec nanoseconds accumulated on worker threads; valid after finish()
  // (zero for the serial backend, whose codec time lands in the calling
  // thread's counter).
  virtual std::uint64_t worker_codec_ns() const { return 0; }
};

// Builds the backend for `cfg`. Serial-fallback rule (see
// RunOptions::jobs): sharded only when jobs > 1 AND cfg.geom.channels > 1;
// jobs <= 1 or a one-channel geometry take the exact serial path.
std::unique_ptr<SimBackend> make_backend(const SimConfig& cfg, unsigned jobs);

}  // namespace wompcm

// Parallel experiment engine.
//
// Every figure in the paper is an architecture x benchmark sweep, and each
// (architecture, benchmark) cell is an independent simulation: it owns its
// own Simulator, trace source, and seed (the seed is derived from the base
// seed and the benchmark name, never from scheduling order). The runner
// therefore schedules cells as tasks on a fixed thread pool and produces
// results that are bit-identical to the serial sweep, in the same order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace wompcm {

class ParallelSweepRunner {
 public:
  explicit ParallelSweepRunner(ParallelPolicy policy = {});

  // Worker threads the runner will use (>= 1; 1 means serial).
  unsigned jobs() const { return jobs_; }

  // Runs every profile against every architecture. Row/column order matches
  // the serial sweep regardless of task completion order.
  std::vector<SweepRow> run(const SimConfig& base,
                            const std::vector<ArchConfig>& archs,
                            const std::vector<WorkloadProfile>& profiles,
                            std::uint64_t accesses, std::uint64_t seed) const;

 private:
  unsigned jobs_;
};

}  // namespace wompcm

#include "sim/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/perf.h"
#include "sim/backend.h"

namespace wompcm {

SimService::SimService(const SimConfig& cfg, ServiceOptions opts)
    : cfg_(cfg),
      backend_(make_backend(cfg, opts.jobs)),
      mapper_(cfg.geom),
      warmup_(cfg.warmup_accesses.value_or(0)),
      deferred_(cfg.geom.channels, 0),
      codec_ns_start_(perf::codec_ns()),
      start_ns_(perf::now_ns()) {}

SimService::~SimService() = default;

void SimService::require_live(const char* what) const {
  if (finished_) {
    throw std::logic_error(std::string("SimService::") + what +
                           ": the service has been drained");
  }
}

SimService::Session& SimService::session_for(SessionId id, const char* what) {
  if (id >= sessions_.size()) {
    throw std::invalid_argument(std::string("SimService::") + what +
                                ": unknown session " + std::to_string(id));
  }
  return sessions_[id];
}

const SimService::Session& SimService::session_for(SessionId id,
                                                   const char* what) const {
  return const_cast<SimService*>(this)->session_for(id, what);
}

SessionId SimService::open_session(StreamSpec spec) {
  require_live("open_session");
  const SessionId id = static_cast<SessionId>(sessions_.size());
  Session s;
  s.name = spec.name.empty() ? "s" + std::to_string(id) : std::move(spec.name);
  // A stream opened mid-run joins at the current instant: its clock is a
  // lower bound on future arrivals, and the merge may already have sealed
  // everything before now().
  s.clock = std::max(spec.start, clock_.now());
  s.tag = spec.per_access_stats ? id + 1 : 0;
  s.ring.resize(std::max<std::size_t>(spec.capacity, 1));
  sessions_.push_back(std::move(s));
  return id;
}

Accepted SimService::submit(SessionId id, const TraceRecord* records,
                            std::size_t n) {
  require_live("submit");
  Session& s = session_for(id, "submit");
  if (!s.open) {
    throw std::invalid_argument("SimService::submit: session " +
                                std::to_string(id) + " (" + s.name +
                                ") is closed");
  }
  const std::uint64_t t0 = perf::now_ticks();
  std::size_t took = 0;
  // Decode the accepted prefix straight into the ring: arrival clocks
  // accumulate per stream (rec.gap is relative to the stream's previous
  // record), addresses decode once, here, like the batch front end.
  while (took < n && s.count < s.ring.size()) {
    const TraceRecord& rec = records[took];
    Transaction tx;
    tx.addr = rec.addr;
    tx.dec = mapper_.decode(rec.addr);
    tx.type = rec.type;
    s.clock += rec.gap;
    tx.arrival = s.clock;
    tx.stream = s.tag;
    s.push(tx);
    ++took;
  }
  trace_gen_ticks_ += perf::now_ticks() - t0;
  s.submitted += took;
  s.rejected += n - took;
  return Accepted{took};
}

void SimService::close_session(SessionId id) {
  require_live("close_session");
  Session& s = session_for(id, "close_session");
  if (!s.open) {
    throw std::invalid_argument("SimService::close_session: session " +
                                std::to_string(id) + " (" + s.name +
                                ") is already closed");
  }
  s.open = false;
}

unsigned SimService::open_sessions() const {
  unsigned n = 0;
  for (const Session& s : sessions_) n += s.open ? 1 : 0;
  return n;
}

const Transaction* SimService::peek_head(std::size_t* session) const {
  const Transaction* best = nullptr;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Session& s = sessions_[i];
    if (s.count == 0) continue;
    // Strict < ties to the lower session id — the MixTraceSource order.
    if (best == nullptr || s.front().arrival < best->arrival) {
      best = &s.front();
      *session = i;
    }
  }
  return best;
}

Tick SimService::unknown_frontier() const {
  Tick t = kNeverTick;
  for (const Session& s : sessions_) {
    if (s.open && s.count == 0) t = std::min(t, s.clock);
  }
  return t;
}

void SimService::inject_due(Tick now) {
  for (;;) {
    std::size_t si = 0;
    const Transaction* head = peek_head(&si);
    if (head == nullptr || head->arrival > now) return;
    // The head is only certainly next in merge order if no open dry
    // session could still slot a record before (or tied with, from a
    // lower-id stream) it. A tie is resolved conservatively: wait until
    // the blocker submits or closes.
    if (head->arrival >= unknown_frontier()) return;
    if (!backend_->can_accept(head->dec)) return;

    Session& s = sessions_[si];
    Transaction tx = *head;
    s.pop();
    tx.id = next_id_++;
    // Warmup semantics: the budget counts transactions, reads and writes
    // jointly, in merge order — the first `warmup` accesses of either
    // kind run unrecorded to reach steady state.
    tx.record = tx.id > warmup_;
    // An arrival held back by back-pressure is timestamped with its
    // actual acceptance time (the CPU stalled; memory latency starts when
    // the controller sees the request).
    if (tx.arrival < now) {
      ++deferred_[tx.dec.channel];
      ++s.deferred;
      tx.arrival = now;
    }
    if (tx.type == AccessType::kRead) {
      ++injected_reads_;
      ++s.injected_reads;
    } else {
      ++injected_writes_;
      ++s.injected_writes;
    }
    backend_->enqueue(tx);
  }
}

SimService::Pump SimService::pump_once() {
  if (pending_tick_ == kNeverTick) {
    const Tick now0 = clock_.now();
    const Tick unknown = unknown_frontier();
    std::size_t si = 0;
    const Transaction* head = peek_head(&si);
    // The batch loop's termination condition: no pending input and every
    // queue drained — even with future wakeups still scheduled (a drained
    // system's events are no-ops, and ticking them would diverge from the
    // batch end time).
    if (head == nullptr && unknown == kNeverTick && backend_->drained()) {
      return Pump::kQuiescent;
    }
    const bool head_certain = head != nullptr && head->arrival < unknown;

    // The batch loop body: the next instant is the earlier of the merge
    // head's (possibly deferred) arrival and the memory system's next
    // event.
    Tick t_arrival = kNeverTick;
    if (head_certain && backend_->can_accept(head->dec)) {
      t_arrival = std::max(head->arrival, now0);
    }
    const Tick ne = backend_->next_event_after(now0);
    const Tick target = earliest(t_arrival, ne);
    if (target == kNeverTick) {
      // Nothing known can happen. A certain head here means the channel
      // queue is wedged with no event to free it — the batch loop's
      // quiescence break. Otherwise it's quiescent only when no input can
      // ever arrive (all sessions closed and drained).
      if (head_certain) return Pump::kQuiescent;
      return (head != nullptr || unknown != kNeverTick) ? Pump::kStarved
                                                        : Pump::kQuiescent;
    }
    // Seal the instant: an open dry session with clock <= target could
    // still submit an arrival at or before it.
    if (target >= unknown) return Pump::kStarved;
    clock_.advance({target});
    pending_tick_ = clock_.now();
  }

  // Execute the owed instant: all due arrivals, then its one tick — but
  // only once the instant is still/again sealed (injections that empty a
  // buffer can expose it to a gap-0 resubmission at the same instant).
  const Tick now = pending_tick_;
  inject_due(now);
  if (unknown_frontier() <= now) return Pump::kStarved;
  backend_->tick(now);
  pending_tick_ = kNeverTick;
  return Pump::kProgress;
}

StepResult SimService::step() {
  require_live("step");
  StepResult r;
  const std::uint64_t before = injected_reads_ + injected_writes_;
  for (;;) {
    const Pump p = pump_once();
    if (p == Pump::kProgress) continue;
    r.starved = p == Pump::kStarved;
    break;
  }
  r.injected = injected_reads_ + injected_writes_ - before;
  r.now = clock_.now();
  return r;
}

SimResult SimService::drain() {
  require_live("drain");
  for (const Session& s : sessions_) {
    if (s.open) {
      throw std::logic_error("SimService::drain: session " + s.name +
                             " is still open (close_session first)");
    }
  }
  // With every session closed nothing is unknown: the pump runs every
  // remaining instant to quiescence.
  while (pump_once() == Pump::kProgress) {
  }
  return finalize();
}

SimResult SimService::finalize() {
  SimResult result;
  result.arch_name = backend_->arch_name();

  MetricsRegistry reg;
  reg.set_counter("sim.injected_reads", injected_reads_);
  reg.set_counter("sim.injected_writes", injected_writes_);
  std::uint64_t deferred_total = 0;
  for (unsigned c = 0; c < deferred_.size(); ++c) {
    reg.set_counter(channel_metric(c, "deferred_injections"), deferred_[c]);
    deferred_total += deferred_[c];
  }
  reg.set_counter("sim.deferred_injections", deferred_total);
  backend_->finish(reg, result);

  // Per-stream books, for sessions that asked for them.
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Session& s = sessions_[i];
    if (!s.publish) continue;
    const unsigned id = static_cast<unsigned>(i);
    reg.set_counter(stream_metric(id, "submitted"), s.submitted);
    reg.set_counter(stream_metric(id, "injected_reads"), s.injected_reads);
    reg.set_counter(stream_metric(id, "injected_writes"), s.injected_writes);
    reg.set_counter(stream_metric(id, "deferred_injections"), s.deferred);
    if (s.tag != 0) {
      SimStats::StreamSlice slice;
      backend_->fold_stream(s.tag, slice);
      reg.set_counter(stream_metric(id, "reads"),
                      slice.read_latency.count());
      reg.set_counter(stream_metric(id, "writes"),
                      slice.write_latency.count());
      reg.set_gauge(stream_metric(id, "avg_read_ns"),
                    slice.read_latency.mean());
      reg.set_gauge(stream_metric(id, "avg_write_ns"),
                    slice.write_latency.mean());
      reg.set_counter(stream_metric(id, "reads_forwarded"),
                      slice.reads_forwarded);
      reg.set_counter(stream_metric(id, "tier_absorbed"),
                      slice.tier_absorbed);
    }
  }
  result.collect(reg);

  // Attribute the host-side wall clock: trace fetch + decode is timed
  // directly (submit and run_to_completion), codec time accumulates in
  // thread-local counters (this thread plus any backend workers), and the
  // controller gets the rest.
  result.phases.total_ns = perf::now_ns() - start_ns_;
  result.phases.trace_gen_ns = perf::ticks_to_ns(trace_gen_ticks_);
  result.phases.codec_ns = (perf::codec_ns() - codec_ns_start_) +
                           backend_->worker_codec_ns();
  const std::uint64_t accounted =
      result.phases.trace_gen_ns + result.phases.codec_ns;
  result.phases.controller_ns =
      result.phases.total_ns > accounted ? result.phases.total_ns - accounted
                                         : 0;

  finished_ = true;
  return result;
}

StreamStats SimService::poll(SessionId id) const {
  const Session& s = session_for(id, "poll");
  StreamStats out;
  out.name = s.name;
  out.open = s.open;
  out.clock = s.clock;
  out.buffered = s.count;
  out.capacity = s.ring.size();
  out.submitted = s.submitted;
  out.rejected = s.rejected;
  out.injected_reads = s.injected_reads;
  out.injected_writes = s.injected_writes;
  out.deferred = s.deferred;
  if (s.tag != 0) {
    SimStats::StreamSlice slice;
    backend_->fold_stream(s.tag, slice);
    out.completed_reads = slice.read_latency.count();
    out.completed_writes = slice.write_latency.count();
    out.avg_read_ns = slice.read_latency.mean();
    out.avg_write_ns = slice.write_latency.mean();
    out.max_read_ns = slice.read_latency.max();
    out.max_write_ns = slice.write_latency.max();
    out.reads_forwarded = slice.reads_forwarded;
    out.tier_absorbed = slice.tier_absorbed;
  }
  return out;
}

SimResult SimService::run_to_completion(TraceSource& trace) {
  // One untagged, unpublished session: the batch path keeps the exact
  // pre-service books and registry (no "stream<N>.*" entries, no
  // per-access slice overhead on the controller hot path).
  StreamSpec spec;
  spec.name = "batch";
  spec.capacity = std::max(1u, cfg_.injection_block);
  spec.per_access_stats = false;
  const SessionId sid = open_session(std::move(spec));
  sessions_[sid].publish = false;

  // Fetch + feed a block at a time (the PR-8 batched front end): block
  // fetches amortize the virtual call, and the service's pump consumes
  // the buffered prefix exactly as the batch loop would.
  const std::size_t block = std::max(1u, cfg_.injection_block);
  std::vector<TraceRecord> buf(block);
  std::size_t have = 0;
  std::size_t at = 0;
  bool eot = false;
  for (;;) {
    if (at == have) {
      if (eot) break;
      const std::uint64_t t0 = perf::now_ticks();
      have = trace.next_block(buf.data(), block);
      trace_gen_ticks_ += perf::now_ticks() - t0;
      at = 0;
      if (have < block) eot = true;
      if (have == 0) break;
    }
    at += submit(sid, buf.data() + at, have - at).accepted;
    step();
  }
  close_session(sid);
  return drain();
}

}  // namespace wompcm

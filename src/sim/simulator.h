// Trace-driven simulation driver.
//
// Wires a trace source and the layered memory system into one run:
//
//   trace -> Simulator -> MemorySystem -> per-channel MemoryController
//                                           -> banks / bus / refresh / arch
//
// The Simulator handles frontend back-pressure (a full channel queue defers
// injection, like a stalled CPU would; trace order is preserved, so a
// stalled head-of-trace access blocks later ones just as a core's load
// queue would) and end-of-trace draining. End-of-run scalars flow through
// the unified metrics registry: every layer publishes into it and
// SimResult::collect() reads it back in one place.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "sim/memory_system.h"
#include "stats/metrics.h"
#include "trace/trace.h"

namespace wompcm {

struct SimConfig {
  MemoryGeometry geom;
  PcmTiming timing;
  SchedulerConfig sched;
  RefreshConfig refresh;
  ArchConfig arch;
  // Seeded fault injection (pcm/fault_model.h). Disabled by default; a
  // disabled config leaves the run bit-identical to a faultless build.
  FaultConfig fault;
  RowPolicy row_policy = RowPolicy::kOpen;
  // Back-pressure bound on queued demand transactions, per channel: each
  // channel controller gets its own queue pair with this capacity, so a
  // saturated channel never stalls its siblings. (Before the MemorySystem
  // split this was one global bound; the paper configuration has a single
  // channel, so its behaviour is unchanged. Multi-channel configs now hold
  // channels * queue_capacity transactions at full load.)
  unsigned queue_capacity = 256;
  bool read_forwarding = true;
  // Records fetched + decoded per trace-injection batch (sim/injector.h).
  // Purely a host-side throughput knob: any value >= 1 produces the
  // bit-identical injection sequence, larger blocks just amortize more of
  // the per-record front-end overhead (virtual fetch, address decode,
  // phase timing). 0 is treated as 1.
  unsigned injection_block = 64;
  // Optional DRAM-timing tier fronting the PCM backend (pcm/tier_spec.h).
  // Disabled by default; a disabled tier leaves runs bit-identical to a
  // tierless build.
  TierSpec tier;
  // Number of leading trace accesses to simulate without recording latency
  // stats (steady-state measurement, like a warmed trace window). nullopt
  // means "auto": run() (sim/run.h) resolves it to 20% of the trace
  // length; a raw Simulator or SimService treats it as zero.
  std::optional<std::uint64_t> warmup_accesses;
};

struct SimResult {
  std::string arch_name;
  SimStats stats;
  // Every named scalar published by the run: system totals plus per-channel
  // breakdowns ("ch<N>.bus_busy_ns", "ch<N>.max_queue_depth", ...). The
  // scalar fields below are collected from this registry.
  MetricsRegistry metrics;
  Tick end_time = 0;
  std::uint64_t injected_reads = 0;
  std::uint64_t injected_writes = 0;
  std::uint64_t deferred_injections = 0;  // arrivals delayed by back-pressure
  std::uint64_t refresh_commands = 0;
  std::uint64_t refresh_rows = 0;
  double capacity_overhead = 0.0;
  double energy_read_pj = 0.0;
  double energy_write_pj = 0.0;
  double energy_refresh_pj = 0.0;
  // Endurance (see pcm/endurance.h): hottest-line pulse count and the
  // projected array lifetime at the observed wear rate.
  double max_line_wear = 0.0;
  double mean_line_wear = 0.0;
  double lifetime_years = 0.0;
  // Fault-injection outcomes (all zero when faults are off; the registry
  // reads missing names as zero, so collect() needs no gating).
  std::uint64_t fault_injected = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_demoted_writes = 0;
  std::uint64_t fault_remapped_rows = 0;
  std::uint64_t fault_dead_rows = 0;
  std::uint64_t fault_read_disturbs = 0;
  // DRAM front tier outcomes (all zero when tiering is off; same no-gating
  // registry convention as the fault counters).
  std::uint64_t tier_read_hits = 0;
  std::uint64_t tier_read_misses = 0;
  std::uint64_t tier_write_hits = 0;
  std::uint64_t tier_write_misses = 0;
  std::uint64_t tier_evictions = 0;
  std::uint64_t tier_writebacks = 0;

  // Demand hit fraction of the DRAM front tier (reads + writes pooled).
  double tier_hit_rate() const {
    const double h = static_cast<double>(tier_read_hits + tier_write_hits);
    const double total =
        h + static_cast<double>(tier_read_misses + tier_write_misses);
    return total == 0.0 ? 0.0 : h / total;
  }

  // Host-side wall-clock breakdown of the run (nanoseconds). Not part of
  // the simulated state: two runs with identical stats will report
  // different phase times. codec_ns is nested inside controller work and
  // already subtracted from controller_ns.
  struct PhaseCounters {
    std::uint64_t trace_gen_ns = 0;   // fetching/decoding trace records
    std::uint64_t controller_ns = 0;  // controller ticks minus codec time
    std::uint64_t codec_ns = 0;       // WOM codec + generation tracking
    std::uint64_t total_ns = 0;       // whole event loop
  };
  PhaseCounters phases;

  // Per bank-like resource (main banks first, then any cache arrays), in
  // global-resource order.
  struct BankUtilization {
    Tick busy_time = 0;
    std::uint64_t ops = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t pauses = 0;
    bool cache = false;  // true for WOM-cache arrays, false for main banks
  };
  std::vector<BankUtilization> banks;

  // Resource class selector for the utilization / row-hit accessors:
  // kAll pools every bank-like resource (the original combined figure),
  // kMain covers only main-memory banks, kCache only WOM-cache arrays.
  enum class BankClass : std::uint8_t { kAll, kMain, kCache };

  double avg_read_ns() const { return stats.demand_read_latency.mean(); }
  double avg_write_ns() const { return stats.demand_write_latency.mean(); }

  // Demand-busy fraction of the most loaded resource over the whole run.
  double max_bank_utilization(BankClass cls = BankClass::kAll) const;
  // Fraction of array accesses that hit an open row.
  double row_hit_rate(BankClass cls = BankClass::kAll) const;

  // Fills every scalar field above from the registry (and stores the
  // registry itself in `metrics`). The single aggregation point: layers
  // publish, collect() reads — no field-by-field copying in the driver.
  void collect(const MetricsRegistry& reg);
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  // Runs the trace to completion (injection + drain) and returns the
  // aggregated result. The simulator may be reused for further runs; each
  // run builds a fresh architecture and memory system.
  SimResult run(TraceSource& trace);

 private:
  SimConfig cfg_;
};

}  // namespace wompcm

// Trace-driven simulation driver.
//
// Wires a trace source, an architecture, and the memory controller into one
// run, handling frontend back-pressure (a full controller queue defers
// injection, like a stalled CPU would) and end-of-trace draining.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "controller/controller.h"
#include "trace/trace.h"

namespace wompcm {

struct SimConfig {
  MemoryGeometry geom;
  PcmTiming timing;
  SchedulerConfig sched;
  RefreshConfig refresh;
  ArchConfig arch;
  RowPolicy row_policy = RowPolicy::kOpen;
  unsigned queue_capacity = 256;
  bool read_forwarding = true;
  // Number of leading trace accesses to simulate without recording latency
  // stats (steady-state measurement, like a warmed trace window). nullopt
  // means "auto": run_benchmark() resolves it to 20% of the trace length;
  // a raw Simulator treats it as zero.
  std::optional<std::uint64_t> warmup_accesses;
};

struct SimResult {
  std::string arch_name;
  SimStats stats;
  Tick end_time = 0;
  std::uint64_t injected_reads = 0;
  std::uint64_t injected_writes = 0;
  std::uint64_t deferred_injections = 0;  // arrivals delayed by back-pressure
  std::uint64_t refresh_commands = 0;
  std::uint64_t refresh_rows = 0;
  double capacity_overhead = 0.0;
  double energy_read_pj = 0.0;
  double energy_write_pj = 0.0;
  double energy_refresh_pj = 0.0;
  // Endurance (see pcm/endurance.h): hottest-line pulse count and the
  // projected array lifetime at the observed wear rate.
  double max_line_wear = 0.0;
  double mean_line_wear = 0.0;
  double lifetime_years = 0.0;

  // Host-side wall-clock breakdown of the run (nanoseconds). Not part of
  // the simulated state: two runs with identical stats will report
  // different phase times. codec_ns is nested inside controller work and
  // already subtracted from controller_ns.
  struct PhaseCounters {
    std::uint64_t trace_gen_ns = 0;   // fetching/decoding trace records
    std::uint64_t controller_ns = 0;  // controller ticks minus codec time
    std::uint64_t codec_ns = 0;       // WOM codec + generation tracking
    std::uint64_t total_ns = 0;       // whole event loop
  };
  PhaseCounters phases;

  // Per bank-like resource (main banks first, then any cache arrays).
  struct BankUtilization {
    Tick busy_time = 0;
    std::uint64_t ops = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t pauses = 0;
  };
  std::vector<BankUtilization> banks;

  double avg_read_ns() const { return stats.demand_read_latency.mean(); }
  double avg_write_ns() const { return stats.demand_write_latency.mean(); }

  // Demand-busy fraction of the most loaded resource over the whole run.
  double max_bank_utilization() const;
  // Fraction of array accesses that hit an open row.
  double row_hit_rate() const;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  // Runs the trace to completion (injection + drain) and returns the
  // aggregated result. The simulator may be reused for further runs; each
  // run builds a fresh architecture and controller.
  SimResult run(TraceSource& trace);

 private:
  SimConfig cfg_;
};

}  // namespace wompcm

#include "sim/experiment.h"

#include "sim/run.h"

namespace wompcm {

SimConfig paper_config() {
  SimConfig cfg;
  // MemoryGeometry and PcmTiming defaults already encode the paper values.
  cfg.geom = MemoryGeometry{};
  cfg.timing = PcmTiming{};
  cfg.sched = SchedulerConfig{};
  cfg.refresh = RefreshConfig{};
  cfg.arch = ArchConfig{};
  return cfg;
}

std::vector<ArchConfig> paper_architectures() {
  std::vector<ArchConfig> v(4);
  v[0].kind = ArchKind::kBaseline;
  v[1].kind = ArchKind::kWomPcm;
  v[2].kind = ArchKind::kRefreshWomPcm;
  v[3].kind = ArchKind::kWcpcm;
  for (auto& a : v) a.code = "rs23-inv";
  return v;
}

std::vector<ArchConfig> composition_sweep(
    const std::vector<CodingKind>& main_codings,
    const std::vector<bool>& cache_options,
    const std::vector<RefreshKind>& refresh_options,
    const std::string& code) {
  std::vector<ArchConfig> out;
  for (const CodingKind main : main_codings) {
    for (const bool cache : cache_options) {
      for (const RefreshKind refresh : refresh_options) {
        Composition c{main, cache, CodingKind::kWomWide, refresh};
        if (!composition_valid(c)) continue;
        ArchConfig a;
        a.composition = validate_composition(c);
        a.code = code;
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

double column_mean(const std::vector<std::vector<double>>& m, std::size_t c) {
  if (m.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& row : m) sum += row.at(c);
  return sum / static_cast<double>(m.size());
}

}  // namespace wompcm

#include "sim/experiment.h"

#include <functional>
#include <stdexcept>

#include "common/thread_pool.h"
#include "sim/parallel_sweep.h"

namespace wompcm {

SimConfig paper_config() {
  SimConfig cfg;
  // MemoryGeometry and PcmTiming defaults already encode the paper values.
  cfg.geom = MemoryGeometry{};
  cfg.timing = PcmTiming{};
  cfg.sched = SchedulerConfig{};
  cfg.refresh = RefreshConfig{};
  cfg.arch = ArchConfig{};
  return cfg;
}

std::vector<ArchConfig> paper_architectures() {
  std::vector<ArchConfig> v(4);
  v[0].kind = ArchKind::kBaseline;
  v[1].kind = ArchKind::kWomPcm;
  v[2].kind = ArchKind::kRefreshWomPcm;
  v[3].kind = ArchKind::kWcpcm;
  for (auto& a : v) a.code = "rs23-inv";
  return v;
}

SimResult run_benchmark(const SimConfig& cfg, const WorkloadProfile& profile,
                        std::uint64_t accesses, std::uint64_t seed) {
  // Mix the benchmark name into the seed so different benchmarks draw
  // different streams even with the same base seed.
  std::uint64_t s = seed;
  for (const char c : profile.name) {
    s = s * 1099511628211ull + static_cast<unsigned char>(c);
  }
  SimConfig resolved = cfg;
  if (!resolved.warmup_accesses.has_value()) {
    resolved.warmup_accesses = accesses / 5;
  }
  // The warmup budget is drawn down by reads and writes jointly (the
  // simulator skips recording for the first `warmup` transactions of either
  // kind), so a budget >= accesses would leave every latency stat empty.
  if (*resolved.warmup_accesses >= accesses) {
    throw std::invalid_argument(
        "run_benchmark: warmup_accesses (" +
        std::to_string(*resolved.warmup_accesses) +
        ") must be smaller than the trace length (" +
        std::to_string(accesses) + ")");
  }
  SyntheticTraceSource trace(profile, resolved.geom, s, accesses);
  Simulator sim(resolved);
  return sim.run(trace);
}

unsigned ParallelPolicy::resolved_jobs() const {
  return jobs == 0 ? ThreadPool::hardware_workers() : jobs;
}

std::vector<SweepRow> run_arch_sweep(
    const SimConfig& base, const std::vector<ArchConfig>& archs,
    const std::vector<WorkloadProfile>& profiles, std::uint64_t accesses,
    std::uint64_t seed, ParallelPolicy policy) {
  return ParallelSweepRunner(policy).run(base, archs, profiles, accesses,
                                         seed);
}

double column_mean(const std::vector<std::vector<double>>& m, std::size_t c) {
  if (m.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& row : m) sum += row.at(c);
  return sum / static_cast<double>(m.size());
}

}  // namespace wompcm

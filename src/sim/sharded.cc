#include "sim/sharded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/event_queue.h"
#include "common/perf.h"
#include "common/thread_pool.h"
#include "controller/controller.h"
#include "sim/injector.h"

namespace wompcm {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// One channel's shard: a private controller, architecture replica, and
// stats sink. Replica c only ever services channel c, so the lanes share
// no mutable state — the barrier below is the only synchronization.
struct Lane {
  std::unique_ptr<Architecture> arch;
  SimStats stats;
  std::unique_ptr<MemoryController> ctl;
};

// The gang barrier. A round is: coordinator publishes `now` and bumps
// `epoch` (release); each worker acquires the bump, steps its due lanes,
// and bumps `done` (release); the coordinator spins on `done` (acquire).
// Those two edges carry every lane-state handoff: anything an executor
// wrote to a lane before its release is visible to whichever executor
// touches that lane after the matching acquire — which is also why the
// coordinator may step a worker-owned lane inline between rounds.
struct Barrier {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<unsigned> done{0};
  std::atomic<Tick> now{0};
  std::atomic<bool> stop{false};
};

// Adaptive wait for the next round: spin briefly (instants are usually
// microseconds apart), then yield, then sleep with a capped backoff so an
// idle worker costs nothing while the coordinator runs inline fast-paths.
// Yielding early matters on oversubscribed machines (including a
// single-core host): the peer the waiter depends on may need this very
// CPU, and a full quantum of pure spinning would serialize every round at
// scheduler-tick granularity.
void wait_for_epoch(const Barrier& bar, std::uint64_t seen) {
  unsigned spins = 0;
  std::uint32_t sleep_us = 1;
  while (bar.epoch.load(std::memory_order_acquire) == seen) {
    ++spins;
    if (spins < 128) {
      cpu_pause();
    } else if (spins < 1024) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      sleep_us = std::min<std::uint32_t>(sleep_us * 2, 100);
    }
  }
}

// The coordinator's end-of-round wait: same spin-then-yield shape, but no
// sleep backoff — workers finish a round in bounded time, and the
// coordinator is on the critical path of every round.
void wait_for_done(const Barrier& bar, unsigned workers) {
  unsigned spins = 0;
  while (bar.done.load(std::memory_order_acquire) != workers) {
    if (++spins < 128) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

SimResult run_single_sharded(const SimConfig& cfg, TraceSource& trace,
                             unsigned jobs) {
  const unsigned channels = cfg.geom.channels;
  if (jobs < 2 || channels < 2) {
    throw std::invalid_argument(
        "run_single_sharded: needs jobs >= 2 and channels >= 2 (callers "
        "fall back to the serial path otherwise)");
  }
  const unsigned executors = std::min(jobs, channels);
  const bool dispatch_all = cfg.sched.scan_mode == ScanMode::kReference;

  // Build the lanes: per-channel replicas of the architecture, each wired
  // to a controller scoped to exactly that channel. Lane c's replica sees
  // only channel c's accesses, and every stochastic or order-sensitive
  // accounting stream is keyed per channel, so the union of the lanes'
  // books equals the one shared instance the serial run keeps.
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(channels);
  for (unsigned c = 0; c < channels; ++c) {
    auto lane = std::make_unique<Lane>();
    lane->arch = make_architecture(cfg.arch, cfg.geom, cfg.timing, cfg.fault);
    ControllerConfig ccfg;
    ccfg.geom = cfg.geom;
    ccfg.timing = cfg.timing;
    ccfg.sched = cfg.sched;
    ccfg.refresh = cfg.refresh;
    ccfg.row_policy = cfg.row_policy;
    ccfg.channel = c;
    ccfg.queue_capacity = cfg.queue_capacity;
    ccfg.read_forwarding = cfg.read_forwarding;
    ccfg.tier = cfg.tier;
    lane->ctl =
        std::make_unique<MemoryController>(ccfg, *lane->arch, lane->stats);
    lanes.push_back(std::move(lane));
  }

  // Lane c belongs to executor c % executors; the coordinator (this
  // thread) is executor 0, workers are 1..executors-1.
  Barrier bar;
  const unsigned workers = executors - 1;
  ThreadPool pool(workers);
  std::vector<std::future<std::uint64_t>> worker_codec;
  worker_codec.reserve(workers);
  for (unsigned w = 1; w <= workers; ++w) {
    std::vector<MemoryController*> mine;
    for (unsigned c = w; c < channels; c += executors) {
      mine.push_back(lanes[c]->ctl.get());
    }
    worker_codec.push_back(pool.submit([&bar, dispatch_all,
                                        mine = std::move(mine)]() {
      // Report the codec time this worker's shards accumulate (it lands in
      // the pool thread's thread-local counter, invisible to the caller).
      const std::uint64_t codec_start = perf::codec_ns();
      std::uint64_t seen = 0;
      for (;;) {
        wait_for_epoch(bar, seen);
        ++seen;
        if (bar.stop.load(std::memory_order_acquire)) break;
        const Tick now = bar.now.load(std::memory_order_relaxed);
        for (MemoryController* ctl : mine) {
          if (dispatch_all || ctl->pending_event() <= now) ctl->tick(now);
        }
        bar.done.fetch_add(1, std::memory_order_release);
      }
      return perf::codec_ns() - codec_start;
    }));
  }

  SimResult result;
  result.arch_name = lanes[0]->arch->name();
  AddressMapper mapper(cfg.geom);

  Clock clock;
  const std::uint64_t warmup = cfg.warmup_accesses.value_or(0);

  std::uint64_t injected_reads = 0;
  std::uint64_t injected_writes = 0;
  std::vector<std::uint64_t> deferred(channels, 0);

  const std::uint64_t codec_ns_start = perf::codec_ns();
  const std::uint64_t loop_start_ns = perf::now_ns();

  auto drained = [&]() {
    for (const auto& lane : lanes) {
      if (!lane->ctl->drained()) return false;
    }
    return true;
  };
  auto next_event_after = [&](Tick now) {
    Tick t = kNeverTick;
    for (const auto& lane : lanes) {
      t = earliest(t, lane->ctl->next_event_after(now));
    }
    return t;
  };

  // Identical to the serial front end (sim/simulator.cc): the trace is
  // read, decoded, and numbered on the coordinator, in trace order, a
  // block at a time.
  TraceInjector inj(trace, mapper, warmup, cfg.injection_block);
  const Transaction* pending = inj.peek();

  // The serial event loop, verbatim, with the tick fanned out. The clock
  // advance and the injection while-loop are byte-for-byte the serial
  // ones, so the (instant, arrivals, due-lanes) sequence matches exactly.
  while (pending != nullptr || !drained()) {
    Tick t_arrival = kNeverTick;
    if (pending != nullptr && lanes[pending->dec.channel]->ctl->can_accept()) {
      t_arrival = std::max(pending->arrival, clock.now());
    }
    if (!clock.advance({t_arrival, next_event_after(clock.now())})) {
      break;  // quiescent: nothing can ever happen
    }
    const Tick now = clock.now();

    while (pending != nullptr &&
           lanes[pending->dec.channel]->ctl->can_accept() &&
           pending->arrival <= now) {
      Transaction tx = *pending;
      if (tx.arrival < now) {
        ++deferred[tx.dec.channel];
        tx.arrival = now;
      }
      if (tx.type == AccessType::kRead) {
        ++injected_reads;
      } else {
        ++injected_writes;
      }
      lanes[tx.dec.channel]->ctl->enqueue(tx);
      inj.pop();
      pending = inj.peek();
    }

    // Step the shards due at `now`. Most instants wake a single channel:
    // step it inline and skip the barrier round entirely (safe — every
    // prior worker write to the lane is ordered before the coordinator's
    // last `done` acquire, and this write before the next epoch release).
    unsigned due = 0;
    unsigned only_due = 0;
    for (unsigned c = 0; c < channels; ++c) {
      if (dispatch_all || lanes[c]->ctl->pending_event() <= now) {
        ++due;
        only_due = c;
      }
    }
    if (due == 0) continue;
    if (due == 1) {
      lanes[only_due]->ctl->tick(now);
      continue;
    }
    bar.now.store(now, std::memory_order_relaxed);
    bar.done.store(0, std::memory_order_relaxed);
    bar.epoch.fetch_add(1, std::memory_order_release);
    for (unsigned c = 0; c < channels; c += executors) {
      if (dispatch_all || lanes[c]->ctl->pending_event() <= now) {
        lanes[c]->ctl->tick(now);
      }
    }
    wait_for_done(bar, workers);
  }

  // Retire the workers and collect the codec time their shards spent.
  bar.stop.store(true, std::memory_order_release);
  bar.epoch.fetch_add(1, std::memory_order_release);
  std::uint64_t worker_codec_ns = 0;
  for (auto& f : worker_codec) worker_codec_ns += f.get();

  result.phases.total_ns = perf::now_ns() - loop_start_ns;
  result.phases.trace_gen_ns = perf::ticks_to_ns(inj.trace_gen_ticks());
  result.phases.codec_ns =
      (perf::codec_ns() - codec_ns_start) + worker_codec_ns;
  const std::uint64_t accounted =
      result.phases.trace_gen_ns + result.phases.codec_ns;
  result.phases.controller_ns =
      result.phases.total_ns > accounted ? result.phases.total_ns - accounted
                                         : 0;

  // Fold the lanes back, in channel order, into the books the serial run
  // keeps: publish the same registry entries, merge the architecture
  // replicas into replica 0, and merge the per-lane stats sinks.
  Tick end_time = 0;
  for (const auto& lane : lanes) {
    end_time = std::max(end_time, lane->ctl->last_completion());
  }

  MetricsRegistry reg;
  reg.set_counter("sim.injected_reads", injected_reads);
  reg.set_counter("sim.injected_writes", injected_writes);
  std::uint64_t deferred_total = 0;
  for (unsigned c = 0; c < channels; ++c) {
    reg.set_counter(channel_metric(c, "deferred_injections"), deferred[c]);
    deferred_total += deferred[c];
  }
  reg.set_counter("sim.deferred_injections", deferred_total);
  reg.set_counter("sim.end_time", end_time);
  for (const auto& lane : lanes) lane->ctl->publish_metrics(reg);
  for (unsigned c = 1; c < channels; ++c) {
    lanes[0]->arch->merge_accounting_from(*lanes[c]->arch);
  }
  lanes[0]->arch->publish_metrics(reg, end_time);
  result.collect(reg);

  for (const auto& lane : lanes) result.stats.merge_from(lane->stats);
  result.stats.counters.merge(lanes[0]->arch->counters());

  const Architecture& arch0 = *lanes[0]->arch;
  result.banks.reserve(arch0.num_resources());
  for (unsigned r = 0; r < arch0.num_resources(); ++r) {
    const Bank& b = lanes[arch0.resource_channel(r)]->ctl->bank(r);
    result.banks.push_back(SimResult::BankUtilization{
        b.busy_time(), b.ops(), b.row_hits(), b.pauses(),
        arch0.is_cache_resource(r)});
  }
  return result;
}

}  // namespace wompcm

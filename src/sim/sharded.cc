#include "sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/event_queue.h"
#include "common/perf.h"
#include "sim/service.h"

namespace wompcm {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

// Adaptive wait for the next round: spin briefly (instants are usually
// microseconds apart), then yield, then sleep with a capped backoff so an
// idle worker costs nothing while the coordinator runs inline fast-paths
// — or while a long-lived service waits for client input between steps.
// Yielding early matters on oversubscribed machines (including a
// single-core host): the peer the waiter depends on may need this very
// CPU, and a full quantum of pure spinning would serialize every round at
// scheduler-tick granularity.
void ShardedBackend::wait_for_epoch(const Barrier& bar, std::uint64_t seen) {
  unsigned spins = 0;
  std::uint32_t sleep_us = 1;
  while (bar.epoch.load(std::memory_order_acquire) == seen) {
    ++spins;
    if (spins < 128) {
      cpu_pause();
    } else if (spins < 1024) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      sleep_us = std::min<std::uint32_t>(sleep_us * 2, 100);
    }
  }
}

// The coordinator's end-of-round wait: same spin-then-yield shape, but no
// sleep backoff — workers finish a round in bounded time, and the
// coordinator is on the critical path of every round.
void ShardedBackend::wait_for_done(const Barrier& bar, unsigned workers) {
  unsigned spins = 0;
  while (bar.done.load(std::memory_order_acquire) != workers) {
    if (++spins < 128) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }
}

ShardedBackend::ShardedBackend(const SimConfig& cfg, unsigned jobs) {
  const unsigned channels = cfg.geom.channels;
  if (jobs < 2 || channels < 2) {
    throw std::invalid_argument(
        "ShardedBackend: needs jobs >= 2 and channels >= 2 (callers fall "
        "back to the serial path otherwise)");
  }
  executors_ = std::min(jobs, channels);
  dispatch_all_ = cfg.sched.scan_mode == ScanMode::kReference;

  // Build the lanes: per-channel replicas of the architecture, each wired
  // to a controller scoped to exactly that channel. Lane c's replica sees
  // only channel c's accesses, and every stochastic or order-sensitive
  // accounting stream is keyed per channel, so the union of the lanes'
  // books equals the one shared instance the serial backend keeps.
  lanes_.reserve(channels);
  for (unsigned c = 0; c < channels; ++c) {
    auto lane = std::make_unique<Lane>();
    lane->arch = make_architecture(cfg.arch, cfg.geom, cfg.timing, cfg.fault);
    ControllerConfig ccfg;
    ccfg.geom = cfg.geom;
    ccfg.timing = cfg.timing;
    ccfg.sched = cfg.sched;
    ccfg.refresh = cfg.refresh;
    ccfg.row_policy = cfg.row_policy;
    ccfg.channel = c;
    ccfg.queue_capacity = cfg.queue_capacity;
    ccfg.read_forwarding = cfg.read_forwarding;
    ccfg.tier = cfg.tier;
    lane->ctl =
        std::make_unique<MemoryController>(ccfg, *lane->arch, lane->stats);
    lanes_.push_back(std::move(lane));
  }
  arch_name_ = lanes_[0]->arch->name();

  // Lane c belongs to executor c % executors; the coordinator (the thread
  // calling tick()) is executor 0, workers are 1..executors-1.
  const unsigned workers = executors_ - 1;
  pool_ = std::make_unique<ThreadPool>(workers);
  worker_codec_.reserve(workers);
  const bool dispatch_all = dispatch_all_;
  for (unsigned w = 1; w <= workers; ++w) {
    std::vector<MemoryController*> mine;
    for (unsigned c = w; c < channels; c += executors_) {
      mine.push_back(lanes_[c]->ctl.get());
    }
    worker_codec_.push_back(pool_->submit([this, dispatch_all,
                                           mine = std::move(mine)]() {
      // Report the codec time this worker's shards accumulate (it lands in
      // the pool thread's thread-local counter, invisible to the caller).
      const std::uint64_t codec_start = perf::codec_ns();
      std::uint64_t seen = 0;
      for (;;) {
        wait_for_epoch(bar_, seen);
        ++seen;
        if (bar_.stop.load(std::memory_order_acquire)) break;
        const Tick now = bar_.now.load(std::memory_order_relaxed);
        for (MemoryController* ctl : mine) {
          if (dispatch_all || ctl->pending_event() <= now) ctl->tick(now);
        }
        bar_.done.fetch_add(1, std::memory_order_release);
      }
      return perf::codec_ns() - codec_start;
    }));
  }
}

ShardedBackend::~ShardedBackend() { retire_workers(); }

void ShardedBackend::retire_workers() {
  if (retired_) return;
  retired_ = true;
  bar_.stop.store(true, std::memory_order_release);
  bar_.epoch.fetch_add(1, std::memory_order_release);
  for (auto& f : worker_codec_) worker_codec_ns_ += f.get();
  pool_.reset();
}

bool ShardedBackend::can_accept(const DecodedAddr& dec) const {
  return lanes_[dec.channel]->ctl->can_accept();
}

void ShardedBackend::enqueue(const Transaction& tx) {
  lanes_[tx.dec.channel]->ctl->enqueue(tx);
}

Tick ShardedBackend::next_event_after(Tick now) {
  Tick t = kNeverTick;
  for (const auto& lane : lanes_) {
    t = earliest(t, lane->ctl->next_event_after(now));
  }
  return t;
}

bool ShardedBackend::drained() const {
  for (const auto& lane : lanes_) {
    if (!lane->ctl->drained()) return false;
  }
  return true;
}

Tick ShardedBackend::last_completion() const {
  Tick t = 0;
  for (const auto& lane : lanes_) {
    t = std::max(t, lane->ctl->last_completion());
  }
  return t;
}

void ShardedBackend::tick(Tick now) {
  // Step the shards due at `now`. Most instants wake a single channel:
  // step it inline and skip the barrier round entirely (safe — every
  // prior worker write to the lane is ordered before the coordinator's
  // last `done` acquire, and this write before the next epoch release).
  const unsigned channels = num_channels();
  unsigned due = 0;
  unsigned only_due = 0;
  for (unsigned c = 0; c < channels; ++c) {
    if (dispatch_all_ || lanes_[c]->ctl->pending_event() <= now) {
      ++due;
      only_due = c;
    }
  }
  if (due == 0) return;
  if (due == 1) {
    lanes_[only_due]->ctl->tick(now);
    return;
  }
  bar_.now.store(now, std::memory_order_relaxed);
  bar_.done.store(0, std::memory_order_relaxed);
  bar_.epoch.fetch_add(1, std::memory_order_release);
  for (unsigned c = 0; c < channels; c += executors_) {
    if (dispatch_all_ || lanes_[c]->ctl->pending_event() <= now) {
      lanes_[c]->ctl->tick(now);
    }
  }
  wait_for_done(bar_, executors_ - 1);
}

void ShardedBackend::fold_stream(std::uint32_t stream,
                                 SimStats::StreamSlice& into) const {
  if (stream == 0) return;
  for (const auto& lane : lanes_) {
    if (stream <= lane->stats.streams.size()) {
      into.merge(lane->stats.streams[stream - 1]);
    }
  }
}

void ShardedBackend::finish(MetricsRegistry& reg, SimResult& result) {
  // Retire the workers first: after this the lanes are exclusively ours.
  retire_workers();

  // Fold the lanes back, in channel order, into the books the serial
  // backend keeps: publish the same registry entries, merge the
  // architecture replicas into replica 0, and merge the per-lane stats
  // sinks.
  const unsigned channels = num_channels();
  reg.set_counter("sim.end_time", last_completion());
  for (const auto& lane : lanes_) lane->ctl->publish_metrics(reg);
  for (unsigned c = 1; c < channels; ++c) {
    lanes_[0]->arch->merge_accounting_from(*lanes_[c]->arch);
  }
  lanes_[0]->arch->publish_metrics(reg, last_completion());

  for (const auto& lane : lanes_) result.stats.merge_from(lane->stats);
  result.stats.counters.merge(lanes_[0]->arch->counters());

  const Architecture& arch0 = *lanes_[0]->arch;
  result.banks.reserve(arch0.num_resources());
  for (unsigned r = 0; r < arch0.num_resources(); ++r) {
    const Bank& b = lanes_[arch0.resource_channel(r)]->ctl->bank(r);
    result.banks.push_back(SimResult::BankUtilization{
        b.busy_time(), b.ops(), b.row_hits(), b.pauses(),
        arch0.is_cache_resource(r)});
  }
}

SimResult run_single_sharded(const SimConfig& cfg, TraceSource& trace,
                             unsigned jobs) {
  if (jobs < 2 || cfg.geom.channels < 2) {
    throw std::invalid_argument(
        "run_single_sharded: needs jobs >= 2 and channels >= 2 (callers "
        "fall back to the serial path otherwise)");
  }
  ServiceOptions opts;
  opts.jobs = jobs;
  SimService service(cfg, opts);
  return service.run_to_completion(trace);
}

}  // namespace wompcm

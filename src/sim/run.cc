#include "sim/run.h"

#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "sim/parallel_sweep.h"
#include "sim/sharded.h"
#include "trace/binary_source.h"
#include "trace/synthetic.h"

namespace wompcm {

unsigned ParallelPolicy::resolved_jobs() const {
  return jobs == 0 ? ThreadPool::hardware_workers() : jobs;
}

TraceSpec TraceSpec::benchmark(std::string name, std::uint64_t accesses) {
  TraceSpec s;
  s.kind_ = Kind::kBenchmark;
  s.name_ = std::move(name);
  s.accesses_ = accesses;
  return s;
}

TraceSpec TraceSpec::profile(WorkloadProfile p, std::uint64_t accesses) {
  TraceSpec s;
  s.kind_ = Kind::kProfile;
  s.name_ = p.name;
  s.profile_ = std::move(p);
  s.accesses_ = accesses;
  return s;
}

TraceSpec TraceSpec::file(std::string path) {
  TraceSpec s;
  s.kind_ = Kind::kFile;
  s.name_ = std::move(path);
  return s;
}

std::uint64_t TraceSpec::mixed_seed(std::uint64_t seed) const {
  if (kind_ == Kind::kFile) return seed;
  // FNV-style mix of the benchmark name, so different benchmarks draw
  // different streams even with the same base seed.
  std::uint64_t s = seed;
  for (const char c : name_) {
    s = s * 1099511628211ull + static_cast<unsigned char>(c);
  }
  return s;
}

std::unique_ptr<TraceSource> TraceSpec::open(const MemoryGeometry& geom,
                                             std::uint64_t seed) const {
  switch (kind_) {
    case Kind::kProfile:
      return std::make_unique<SyntheticTraceSource>(*profile_, geom,
                                                    mixed_seed(seed),
                                                    accesses_);
    case Kind::kBenchmark: {
      const std::optional<WorkloadProfile> p = find_profile(name_);
      if (!p.has_value()) {
        throw std::invalid_argument("run: unknown benchmark \"" + name_ +
                                    "\" (see trace/profiles.h)");
      }
      return std::make_unique<SyntheticTraceSource>(*p, geom, mixed_seed(seed),
                                                    accesses_);
    }
    case Kind::kFile:
      // Format-dispatching: binary traces get the zero-copy mmap reader,
      // text traces the buffered parser (trace/binary_source.h).
      return open_trace(name_);
  }
  throw std::invalid_argument("run: bad TraceSpec kind");
}

namespace {

// Folds the per-run option overrides into the config they override.
SimConfig resolved_config(const RunRequest& req) {
  SimConfig cfg = req.config;
  if (req.options.scan_mode.has_value()) {
    cfg.sched.scan_mode = *req.options.scan_mode;
  }
  if (req.options.warmup.has_value()) {
    cfg.warmup_accesses = *req.options.warmup;
  }
  return cfg;
}

}  // namespace

SimResult run(const RunRequest& req) {
  SimConfig cfg = resolved_config(req);
  const std::uint64_t accesses = req.trace.accesses();
  if (accesses > 0) {
    if (!cfg.warmup_accesses.has_value()) {
      cfg.warmup_accesses = accesses / 5;
    }
    // The warmup budget is drawn down by reads and writes jointly (the
    // simulator skips recording for the first `warmup` transactions of
    // either kind), so a budget >= accesses would leave every latency stat
    // empty.
    if (*cfg.warmup_accesses >= accesses) {
      throw std::invalid_argument(
          "run: warmup_accesses (" + std::to_string(*cfg.warmup_accesses) +
          ") must be smaller than the trace length (" +
          std::to_string(accesses) + ")");
    }
  }
  const std::unique_ptr<TraceSource> trace =
      req.trace.open(cfg.geom, req.options.seed);
  // Serial-fallback rule (see RunOptions::jobs): shard only on an explicit
  // jobs > 1 with a multi-channel geometry; results are bit-identical.
  if (req.options.jobs.jobs > 1 && cfg.geom.channels > 1) {
    return run_single_sharded(cfg, *trace, req.options.jobs.jobs);
  }
  Simulator sim(cfg);
  return sim.run(*trace);
}

std::vector<SweepRow> run_sweep(const RunRequest& base,
                                const std::vector<ArchConfig>& archs,
                                const std::vector<WorkloadProfile>& profiles) {
  if (base.trace.kind() == TraceSpec::Kind::kFile) {
    throw std::invalid_argument(
        "run_sweep: the base trace must be synthetic (it only supplies the "
        "per-benchmark access count; the profile list names the traces)");
  }
  return ParallelSweepRunner(base.options.jobs)
      .run(resolved_config(base), archs, profiles, base.trace.accesses(),
           base.options.seed);
}

}  // namespace wompcm

#include "sim/parallel_sweep.h"

#include <future>

#include "common/thread_pool.h"

namespace wompcm {

namespace {

// One (architecture, benchmark) cell: an independent run of `base` with
// the architecture swapped in.
SimResult run_cell(const SimConfig& base, const ArchConfig& arch,
                   const WorkloadProfile& profile, std::uint64_t accesses,
                   std::uint64_t seed) {
  RunRequest req;
  req.config = base;
  req.config.arch = arch;
  req.trace = TraceSpec::profile(profile, accesses);
  req.options.seed = seed;
  return run(req);
}

}  // namespace

ParallelSweepRunner::ParallelSweepRunner(ParallelPolicy policy)
    : jobs_(policy.resolved_jobs()) {}

std::vector<SweepRow> ParallelSweepRunner::run(
    const SimConfig& base, const std::vector<ArchConfig>& archs,
    const std::vector<WorkloadProfile>& profiles, std::uint64_t accesses,
    std::uint64_t seed) const {
  std::vector<SweepRow> rows(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    rows[i].benchmark = profiles[i].name;
    rows[i].results.resize(archs.size());
  }

  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      for (std::size_t j = 0; j < archs.size(); ++j) {
        rows[i].results[j] =
            run_cell(base, archs[j], profiles[i], accesses, seed);
      }
    }
    return rows;
  }

  ThreadPool pool(jobs_);
  std::vector<std::future<SimResult>> cells;
  cells.reserve(profiles.size() * archs.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < archs.size(); ++j) {
      cells.push_back(pool.submit([&base, &archs, &profiles, accesses, seed, i,
                                   j] {
        return run_cell(base, archs[j], profiles[i], accesses, seed);
      }));
    }
  }
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < archs.size(); ++j) {
      rows[i].results[j] = cells[i * archs.size() + j].get();
    }
  }
  return rows;
}

}  // namespace wompcm

// Simulation-as-a-service: a session-oriented streaming API over the
// simulator.
//
// A SimService owns one memory system (serial or sharded, sim/backend.h)
// for its whole lifetime and lets any number of client streams feed it
// request records incrementally:
//
//   SimService svc(cfg, {.jobs = 4});
//   SessionId a = svc.open_session({.name = "core0"});
//   SessionId b = svc.open_session({.name = "core1"});
//   while (...) {
//     Accepted got = svc.submit(a, records, n);   // partial-accept
//     svc.step();                                 // advance simulated time
//     StreamStats s = svc.poll(a);                // per-stream books
//   }
//   svc.close_session(a); svc.close_session(b);   // end of stream
//   SimResult r = svc.drain();                    // run to quiescence
//
// Ordering and determinism. Each session keeps its own arrival clock
// (record gaps accumulate per stream, exactly like one core of a
// multi-programmed mix); the service merges buffered arrivals from all
// sessions into strict (arrival time, session id) order — the identical
// order trace/mix.h produces for the pre-merged trace — and runs the
// serial event loop of the batch simulator over that merged stream. The
// one thing streaming adds is *uncertainty about the future*: an open
// session whose buffer has run dry could still submit a record at any
// arrival >= its clock (gaps are unsigned, so a session clock is a lower
// bound on everything it will ever send). The service therefore never
// executes a simulated instant t unless t < the minimum clock over all
// open dry sessions — every instant is "sealed" before it runs, with the
// full set of same-instant arrivals buffered. Within a sealed instant the
// loop body is the batch one, so a K-session service run is bit-identical
// to a batch run() over the pre-merged trace, independent of how the
// clients chunk their submissions. step() simply stops ("starved") at the
// first unsealed instant; it resumes after more input or a close.
//
// Back-pressure. submit() accepts up to the session's free buffer
// capacity and reports the count — never a silent drop; the client
// resubmits the tail after a step(). Downstream, a full channel queue
// defers injection exactly as in the batch loop (head-of-line blocking in
// merge order; the deferral books are per channel and per stream).
//
// End of stream. close_session() marks the stream done: its clock stops
// gating the merge, its buffered tail still drains. drain() requires
// every session closed, runs the system to quiescence, and returns the
// aggregate SimResult; per-stream books are published into the result's
// metrics registry under "stream<N>.*" (stats/metrics.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/address.h"
#include "common/event_queue.h"
#include "controller/transaction.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace wompcm {

class SimBackend;

using SessionId = std::uint32_t;

struct ServiceOptions {
  // Worker policy for the backing memory system. Serial-fallback rule
  // (sim/run.h): sharded execution only for jobs > 1 on a multi-channel
  // geometry; results are bit-identical either way.
  unsigned jobs = 1;
};

struct StreamSpec {
  // Label reported in poll(); defaults to "s<id>".
  std::string name;
  // Back-pressure bound on buffered (accepted but not yet injected)
  // records; submit() partial-accepts beyond it. 0 is treated as 1.
  std::size_t capacity = 4096;
  // Base of the stream's arrival clock. Clamped forward to the current
  // simulated time for sessions opened mid-run (a stream cannot inject
  // into the past).
  Tick start = 0;
  // Tag this session's transactions so recorded demand latencies are
  // sliced per stream ("stream<N>.*" metrics and poll() latency figures)
  // on top of the aggregate books. Tagging never changes simulated
  // behaviour; turning it off removes the per-access slice bookkeeping.
  bool per_access_stats = true;
};

// submit() outcome: how many records were accepted (prefix order; the
// client resubmits from records + accepted). Never a silent drop.
struct Accepted {
  std::size_t accepted = 0;
};

// One step() outcome.
struct StepResult {
  // Demand transactions handed to the memory system during this step.
  std::uint64_t injected = 0;
  // Simulated clock after the step.
  Tick now = 0;
  // True when the service stopped because more input could change the
  // outcome: an open session's buffer ran dry (or back-pressure wedged the
  // merge head) before the next instant could be sealed. False once every
  // session is closed and the system has run to quiescence.
  bool starved = false;
};

// poll() snapshot of one session's books.
struct StreamStats {
  std::string name;
  bool open = false;
  Tick clock = 0;                     // arrival frontier of the stream
  std::size_t buffered = 0;           // accepted, awaiting injection
  std::size_t capacity = 0;
  std::uint64_t submitted = 0;        // records accepted so far
  std::uint64_t rejected = 0;         // offered but bounced by back-pressure
  std::uint64_t injected_reads = 0;
  std::uint64_t injected_writes = 0;
  std::uint64_t deferred = 0;         // arrivals delayed by channel pressure
  // Recorded (post-warmup) completions, from the per-stream latency slice;
  // all zero when per_access_stats is off.
  std::uint64_t completed_reads = 0;
  std::uint64_t completed_writes = 0;
  double avg_read_ns = 0.0;
  double avg_write_ns = 0.0;
  Tick max_read_ns = 0;
  Tick max_write_ns = 0;
  std::uint64_t reads_forwarded = 0;  // served from the write queue
  std::uint64_t tier_absorbed = 0;    // served by the DRAM front tier
};

class SimService {
 public:
  explicit SimService(const SimConfig& cfg, ServiceOptions opts = {});
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  // Opens a stream. Throws std::logic_error after drain().
  SessionId open_session(StreamSpec spec = {});

  // Feeds records to a session, accepting a prefix bounded by the
  // session's free buffer capacity. Throws std::invalid_argument for an
  // unknown or closed session. Zero records is a valid no-op.
  Accepted submit(SessionId id, const TraceRecord* records, std::size_t n);
  Accepted submit(SessionId id, const std::vector<TraceRecord>& records) {
    return submit(id, records.data(), records.size());
  }

  // End of stream: no further submits; the buffered tail still drains and
  // the session's clock stops gating the merge. Throws
  // std::invalid_argument if already closed.
  void close_session(SessionId id);

  // Advances simulated time as far as determinism allows: until every
  // sealed instant has run and the next one needs more input (starved), or
  // — once all sessions are closed — until the system is quiescent.
  StepResult step();

  // Requires every session closed (std::logic_error otherwise). Runs to
  // quiescence, publishes the books, and returns the aggregate result.
  // The service is finished afterwards: open/submit/step throw.
  SimResult drain();

  // Per-session books; valid any time before drain(), including between
  // steps of a live run.
  StreamStats poll(SessionId id) const;

  Tick now() const { return clock_.now(); }
  unsigned open_sessions() const;

  // The batch entry: one internal session, the whole trace fed through the
  // submit/step/close/drain cycle. Exactly the classic
  // Simulator(cfg).run(trace) — same injected ids, same instants, same
  // books (the internal session is untagged and publishes no stream
  // metrics, keeping batch registries byte-identical to the pre-service
  // driver).
  SimResult run_to_completion(TraceSource& trace);

 private:
  struct Session {
    std::string name;
    bool open = true;
    bool publish = true;     // emit "stream<N>.*" metrics at drain
    std::uint32_t tag = 0;   // Transaction::stream value; 0 = untagged
    Tick clock = 0;          // arrival of the last accepted record
    // Fixed-capacity ring of decoded, not-yet-injected transactions
    // (ids are assigned at injection, in merge order).
    std::vector<Transaction> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    // Books.
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t injected_reads = 0;
    std::uint64_t injected_writes = 0;
    std::uint64_t deferred = 0;

    const Transaction& front() const { return ring[head]; }
    void pop() {
      head = head + 1 == ring.size() ? 0 : head + 1;
      --count;
    }
    void push(const Transaction& tx) {
      std::size_t at = head + count;
      if (at >= ring.size()) at -= ring.size();
      ring[at] = tx;
      ++count;
    }
  };

  // One pump iteration: at most one simulated instant, end to end.
  enum class Pump : std::uint8_t { kProgress, kStarved, kQuiescent };

  Session& session_for(SessionId id, const char* what);
  const Session& session_for(SessionId id, const char* what) const;
  // The merge head: the buffered transaction least in (arrival, session)
  // order, or nullptr when every buffer is empty.
  const Transaction* peek_head(std::size_t* session) const;
  // Lower bound on the arrival of any record an open dry session may still
  // submit (kNeverTick when no session is open with an empty buffer).
  // Instants at or past this bound are not yet sealed.
  Tick unknown_frontier() const;
  // Injects every sealed merge head due at or before `now` while the
  // target channel accepts it (the batch loop's inner while).
  void inject_due(Tick now);
  Pump pump_once();
  void require_live(const char* what) const;
  SimResult finalize();

  SimConfig cfg_;
  std::unique_ptr<SimBackend> backend_;
  AddressMapper mapper_;
  Clock clock_;
  std::uint64_t warmup_ = 0;
  std::uint64_t next_id_ = 1;
  // An instant whose arrivals were injected but whose tick is still owed:
  // set when an instant's buffer-emptying injection un-seals the instant
  // itself (a gap-0 submit could still land there). The owed tick runs
  // first thing once the instant seals again.
  Tick pending_tick_ = kNeverTick;
  std::vector<Session> sessions_;
  std::vector<std::uint64_t> deferred_;  // per channel
  std::uint64_t injected_reads_ = 0;
  std::uint64_t injected_writes_ = 0;
  std::uint64_t trace_gen_ticks_ = 0;
  std::uint64_t codec_ns_start_ = 0;
  std::uint64_t start_ns_ = 0;
  bool finished_ = false;
};

}  // namespace wompcm

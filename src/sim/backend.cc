#include "sim/backend.h"

#include "sim/memory_system.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace wompcm {

namespace {

// The serial substrate: one MemorySystem (per-channel controllers sharing
// one Architecture and one SimStats sink) stepped inline on the calling
// thread — byte-for-byte the components the original Simulator::run wired.
class SerialBackend final : public SimBackend {
 public:
  explicit SerialBackend(const SimConfig& cfg)
      : arch_(make_architecture(cfg.arch, cfg.geom, cfg.timing, cfg.fault)),
        arch_name_(arch_->name()),
        mem_(memory_config(cfg), *arch_, stats_) {}

  const std::string& arch_name() const override { return arch_name_; }
  unsigned num_channels() const override { return mem_.num_channels(); }

  bool can_accept(const DecodedAddr& dec) const override {
    return mem_.can_accept(dec);
  }
  void enqueue(const Transaction& tx) override { mem_.enqueue(tx); }
  Tick next_event_after(Tick now) override {
    return mem_.next_event_after(now);
  }
  void tick(Tick now) override { mem_.tick(now); }
  bool drained() const override { return mem_.drained(); }
  Tick last_completion() const override { return mem_.last_completion(); }

  void fold_stream(std::uint32_t stream,
                   SimStats::StreamSlice& into) const override {
    if (stream != 0 && stream <= stats_.streams.size()) {
      into.merge(stats_.streams[stream - 1]);
    }
  }

  void finish(MetricsRegistry& reg, SimResult& result) override {
    mem_.publish_metrics(reg);  // includes "sim.end_time"
    arch_->publish_metrics(reg, mem_.last_completion());
    result.stats.merge_from(stats_);
    result.stats.counters.merge(arch_->counters());
    result.banks.reserve(arch_->num_resources());
    for (const MemorySystem::BankSnapshot& s : mem_.banks()) {
      result.banks.push_back(SimResult::BankUtilization{
          s.bank->busy_time(), s.bank->ops(), s.bank->row_hits(),
          s.bank->pauses(), s.is_cache});
    }
  }

 private:
  static MemorySystemConfig memory_config(const SimConfig& cfg) {
    MemorySystemConfig mcfg;
    mcfg.geom = cfg.geom;
    mcfg.timing = cfg.timing;
    mcfg.sched = cfg.sched;
    mcfg.refresh = cfg.refresh;
    mcfg.row_policy = cfg.row_policy;
    mcfg.queue_capacity = cfg.queue_capacity;
    mcfg.read_forwarding = cfg.read_forwarding;
    mcfg.tier = cfg.tier;
    return mcfg;
  }

  std::unique_ptr<Architecture> arch_;
  std::string arch_name_;
  SimStats stats_;
  MemorySystem mem_;
};

}  // namespace

std::unique_ptr<SimBackend> make_backend(const SimConfig& cfg,
                                         unsigned jobs) {
  if (jobs > 1 && cfg.geom.channels > 1) {
    return std::make_unique<ShardedBackend>(cfg, jobs);
  }
  return std::make_unique<SerialBackend>(cfg);
}

}  // namespace wompcm

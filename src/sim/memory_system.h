// MemorySystem: the facade over the per-channel memory controllers.
//
// Layering (trace side down):
//
//   trace -> Simulator -> MemorySystem -> MemoryController (one per channel)
//                                           -> banks / bus / refresh / arch
//
// The facade owns N per-channel MemoryController instances sharing one
// Architecture and one SimStats sink. It routes transactions by their
// decoded channel coordinate, answers back-pressure per channel (a
// saturated channel never stalls an idle sibling), folds the per-channel
// event streams into one next_event_after(), and publishes/collects the
// unified end-of-run metrics.
#pragma once

#include <memory>
#include <vector>

#include "arch/arch.h"
#include "controller/controller.h"
#include "pcm/bank.h"
#include "stats/metrics.h"
#include "stats/stats.h"

namespace wompcm {

struct MemorySystemConfig {
  MemoryGeometry geom;
  PcmTiming timing;
  SchedulerConfig sched;
  RefreshConfig refresh;
  RowPolicy row_policy = RowPolicy::kOpen;
  // Per-channel back-pressure bound (each controller gets this capacity;
  // the paper's single-channel configuration is unchanged).
  unsigned queue_capacity = 256;
  bool read_forwarding = true;
  // Optional DRAM-timing tier in front of the PCM backend (one TierFront
  // per channel; see pcm/tier_spec.h).
  TierSpec tier;
};

class MemorySystem {
 public:
  MemorySystem(const MemorySystemConfig& cfg, Architecture& arch,
               SimStats& stats);

  unsigned num_channels() const {
    return static_cast<unsigned>(channels_.size());
  }

  // Frontend back-pressure for the channel this address decodes to.
  bool can_accept(const DecodedAddr& dec) const;

  // Routes a demand transaction to its channel's controller.
  void enqueue(const Transaction& tx);

  // Earliest future instant any channel could make progress (kNeverTick
  // when the whole system is quiescent).
  Tick next_event_after(Tick now);

  // Ticks the channel controllers with work due at `now` (every controller
  // in reference scan mode; monotone across calls).
  void tick(Tick now);

  bool drained() const;
  Tick last_completion() const;

  MemoryController& channel(unsigned c) { return *channels_[c]; }
  const MemoryController& channel(unsigned c) const { return *channels_[c]; }

  // Per bank-like resource snapshot, in global-resource order (main banks
  // first, then any cache arrays) — identical ordering to the pre-facade
  // single controller.
  struct BankSnapshot {
    const Bank* bank = nullptr;
    bool is_cache = false;
  };
  std::vector<BankSnapshot> banks() const;

  // Publishes system totals and every channel's breakdown into `reg`.
  void publish_metrics(MetricsRegistry& reg) const;

 private:
  Architecture& arch_;
  // Reference scan mode dispatches every tick to every channel instead of
  // only the channels with a due event (see ScanMode).
  bool dispatch_all_ = false;
  std::vector<std::unique_ptr<MemoryController>> channels_;
};

}  // namespace wompcm

// Unified run-entry API.
//
// Every way of running the simulator — one benchmark, a recorded trace
// file, an architecture x benchmark sweep — goes through one value type:
//
//   RunRequest req;
//   req.config = paper_config();             // platform + architecture
//   req.trace = TraceSpec::benchmark("401.bzip2", 200'000);
//   req.options.seed = 42;                   // + warmup / jobs / scan_mode
//   SimResult r = run(req);
//
// The request is a plain value: it can be copied, stored, and replayed —
// two runs of an identical request produce identical SimResults. run()
// itself is a thin client of SimService (sim/service.h): it opens one
// session, feeds the whole trace through the submit/step cycle, and
// drains; interactive clients use the service directly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "trace/profiles.h"
#include "trace/trace.h"

namespace wompcm {

// How a sweep distributes its (architecture, benchmark) cells.
struct ParallelPolicy {
  // 0 = one worker per hardware thread; 1 = serial in the calling thread;
  // N = fixed pool of N workers. Results are bit-identical either way:
  // every cell owns its own simulator, trace source, and derived seed.
  unsigned jobs = 0;

  static ParallelPolicy serial() { return ParallelPolicy{1}; }
  static ParallelPolicy automatic() { return ParallelPolicy{0}; }
  static ParallelPolicy with_jobs(unsigned n) { return ParallelPolicy{n}; }

  unsigned resolved_jobs() const;  // >= 1
};

// One benchmark's results across a set of architectures.
struct SweepRow {
  std::string benchmark;
  std::vector<SimResult> results;  // parallel to the arch list
};

// Where the access stream comes from. A TraceSpec is pure description —
// opening it (and any named-profile lookup) happens inside run().
class TraceSpec {
 public:
  enum class Kind : std::uint8_t {
    kProfile,    // an explicit WorkloadProfile, synthesized
    kBenchmark,  // a paper benchmark by name (trace/profiles.h), synthesized
    kFile,       // a recorded trace file (trace/file_source.h)
  };

  // Default: the first paper benchmark would be arbitrary, so default to an
  // empty benchmark name — open() rejects it with a clear error.
  TraceSpec() = default;

  static TraceSpec benchmark(std::string name, std::uint64_t accesses);
  static TraceSpec profile(WorkloadProfile p, std::uint64_t accesses);
  static TraceSpec file(std::string path);

  Kind kind() const { return kind_; }
  // Benchmark/profile name, or the file path.
  const std::string& name() const { return name_; }
  // Synthetic trace length; 0 for file traces (they run to end of file).
  std::uint64_t accesses() const { return accesses_; }

  // Seed the opened source actually draws from: synthetic traces mix the
  // profile name into the base seed so different benchmarks see different
  // streams even with the same base seed; recorded files ignore it.
  std::uint64_t mixed_seed(std::uint64_t seed) const;

  // Opens the source. Throws std::invalid_argument for an unknown
  // benchmark name, std::runtime_error for an unreadable trace file.
  std::unique_ptr<TraceSource> open(const MemoryGeometry& geom,
                                    std::uint64_t seed) const;

 private:
  Kind kind_ = Kind::kBenchmark;
  std::string name_;
  std::optional<WorkloadProfile> profile_;
  std::uint64_t accesses_ = 0;
};

struct RunOptions {
  // Overrides SimConfig::warmup_accesses when set (the config keeps "auto").
  std::optional<std::uint64_t> warmup;
  // Scheduler scan mode override (indexed/reference are bit-identical; the
  // override exists for cross-checking exactly that).
  std::optional<ScanMode> scan_mode;
  // Worker policy, for both run_sweep() (cell distribution) and single
  // runs (channel sharding, sim/sharded.h). Serial-fallback rule: a single
  // run shards only when jobs is explicitly > 1 AND the config has more
  // than one channel; jobs = 1, jobs = 0 ("automatic"), or a one-channel
  // geometry take the exact legacy serial path. Automatic stays serial on
  // purpose: run() is also called per cell inside parallel sweeps, and
  // auto-sharding there would nest channel workers inside sweep workers.
  // Sharded and serial results are bit-identical either way.
  ParallelPolicy jobs{};
  // Base trace seed (mixed per benchmark, see TraceSpec::mixed_seed).
  std::uint64_t seed = 42;

  // Convenience for the overwhelmingly common case of "defaults, but this
  // seed" (designated initializers would do, but GCC 12 flags the omitted
  // defaulted members under -Wextra).
  static RunOptions with_seed(std::uint64_t s) {
    RunOptions o;
    o.seed = s;
    return o;
  }
};

struct RunRequest {
  SimConfig config;
  TraceSpec trace;
  RunOptions options{};
};

// Runs one request to completion. For synthetic traces an unset warmup
// resolves to accesses/5; throws std::invalid_argument if the resolved
// warmup budget is not smaller than the trace length (it would record no
// latency samples).
SimResult run(const RunRequest& req);

// Runs every profile against every architecture, each cell an independent
// simulation of `base` with the architecture swapped in (same trace per
// benchmark). Cells are distributed per base.options.jobs; the result is
// independent of the policy. `base.trace` supplies the per-benchmark
// access count, so it must be synthetic.
std::vector<SweepRow> run_sweep(const RunRequest& base,
                                const std::vector<ArchConfig>& archs,
                                const std::vector<WorkloadProfile>& profiles);

}  // namespace wompcm

// SimConfig <-> key=value plumbing for the CLI tools.
//
// All examples and benches accept overrides like "ranks=4 arch=wcpcm
// code=rs23-inv row_policy=closed"; this module centralizes the mapping so
// every binary understands the same dialect, and a config can be loaded
// from a file of key=value lines ('#' comments allowed).
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "sim/simulator.h"

namespace wompcm {

// Applies the recognized keys from `kv` onto `base`. Strict: an unknown key
// throws std::invalid_argument naming the key and the nearest valid key
// ("config: unknown key 'scanmode' (did you mean 'scan_mode'?)"), so a typo
// never silently runs the default configuration. Keys that belong to the
// calling harness rather than the SimConfig (e.g. accesses/benchmark/jobs)
// are passed in `harness_keys` and skipped. Throws std::invalid_argument
// when a recognized key has a bad value.
//
// Keys: channels ranks banks rows cols devices burst
//       row_read row_write reset set col_read refresh_period
//       arch (pcm|wom|refresh|wcpcm|fnw) code organization (wide|hidden)
//       rat rth pausing policy (fcfs|read-priority) row_policy (open|closed)
//       queue_capacity read_forwarding warmup
//       start_gap start_gap_interval fnw_fast seed
//       fault.enabled fault.seed fault.endurance fault.sigma
//       fault.initial_wear fault.max_retries fault.spare_rows
//       fault.read_disturb
//       tier.enabled tier.sets tier.ways tier.replacement (lru|fifo|random)
//       tier.write_policy (writeback|writethrough) tier.hit_read
//       tier.hit_write tier.port tier.fault.enabled tier.fault.seed
//       tier.fault.rate
SimConfig apply_overrides(SimConfig base, const KeyValueConfig& kv,
                          const std::vector<std::string>& harness_keys = {});

// Loads key=value lines from a file and applies them onto `base`.
// Throws std::runtime_error if the file cannot be read.
SimConfig load_config_file(const SimConfig& base, const std::string& path);

// Human-readable one-key-per-line dump, loadable by load_config_file.
std::string describe(const SimConfig& cfg);

}  // namespace wompcm

// Batched trace-injection front end, shared by the serial and sharded
// event loops.
//
// The loops used to fetch one TraceRecord per injection: a virtual next()
// call, an address decode, and a timing rdtsc pair per record. The
// injector instead pulls a block of records at a time (TraceSource::
// next_block), decodes them into ready-to-enqueue Transactions in one
// pass, and charges one rdtsc pair per block — amortizing the whole
// per-record front-end overhead by the block size.
//
// The buffer is strictly global trace order, NOT split per channel:
// back-pressure is head-of-line blocking (a stalled head-of-trace access
// holds back later ones even on other channels, like a core's load queue
// would), so the consumer only ever needs the single next transaction, and
// any per-channel reordering would change injection semantics. peek()/
// pop() therefore expose exactly the sequence the old one-at-a-time fetch
// produced: same ids, same arrival clocks, same warmup flags — decoding a
// block ahead is invisible because decode is pure and the trace clock is
// accumulated in record order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/address.h"
#include "common/perf.h"
#include "controller/transaction.h"
#include "trace/trace.h"

namespace wompcm {

class TraceInjector {
 public:
  // `block` is the records-per-refill batch size (SimConfig::
  // injection_block); any value >= 1 yields the identical injection
  // sequence, larger values just amortize more.
  TraceInjector(TraceSource& trace, const AddressMapper& mapper,
                std::uint64_t warmup, unsigned block)
      : trace_(trace),
        mapper_(mapper),
        warmup_(warmup),
        block_(block == 0 ? 1 : block) {
    raw_.resize(block_);
    buf_.reserve(block_);
    refill();
  }

  // The next transaction in trace order, or nullptr at end of trace. The
  // pointer is valid until the next pop().
  const Transaction* peek() const {
    return pos_ < buf_.size() ? &buf_[pos_] : nullptr;
  }

  // Consumes the front transaction (refilling when the block runs out).
  void pop() {
    if (++pos_ >= buf_.size()) refill();
  }

  // Host nanoseconds spent fetching + decoding, for SimResult::phases.
  std::uint64_t trace_gen_ticks() const { return trace_gen_ticks_; }

 private:
  void refill() {
    pos_ = 0;
    buf_.clear();
    if (eot_) return;
    const std::uint64_t t0 = perf::now_ticks();
    const std::size_t n = trace_.next_block(raw_.data(), block_);
    if (n < block_) eot_ = true;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceRecord& rec = raw_[i];
      trace_clock_ += rec.gap;
      Transaction tx;
      tx.id = next_id_++;
      tx.addr = rec.addr;
      tx.dec = mapper_.decode(rec.addr);
      tx.type = rec.type;
      tx.arrival = trace_clock_;
      // Warmup semantics: the budget counts *transactions*, reads and
      // writes jointly, in trace order — the first `warmup` accesses of
      // either kind run unrecorded to reach steady state. run() rejects
      // budgets >= the trace length, which would record nothing.
      tx.record = tx.id > warmup_;
      buf_.push_back(tx);
    }
    trace_gen_ticks_ += perf::now_ticks() - t0;
  }

  TraceSource& trace_;
  const AddressMapper& mapper_;
  std::uint64_t warmup_;
  std::size_t block_;
  std::vector<TraceRecord> raw_;   // undecoded block, reused per refill
  std::vector<Transaction> buf_;   // decoded block, consumed via pos_
  std::size_t pos_ = 0;
  Tick trace_clock_ = 0;
  std::uint64_t next_id_ = 1;
  bool eot_ = false;
  std::uint64_t trace_gen_ticks_ = 0;
};

}  // namespace wompcm

#include "sim/config_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wompcm {

namespace {

// Every key apply_overrides() recognizes. Kept next to the handlers below;
// the EveryFieldRoundTripsThroughDescribe test catches a handler added
// without its describe() line, and the strict unknown-key check makes a
// key listed here but not handled (or vice versa) fail loudly in tests.
constexpr const char* kKnownKeys[] = {
    "channels", "ranks", "banks", "rows", "cols", "devices", "bits_per_col",
    "burst", "mapping", "row_read", "row_write", "reset", "set", "col_read",
    "refresh_period", "tag_check", "pause_resume", "arch", "code",
    "organization", "rat", "main.coding", "main.code", "cache.enabled",
    "cache.coding", "cache.code", "refresh", "refresh_enabled", "require_empty_queues", "rth",
    "pausing", "fnw_fast", "start_gap", "start_gap_interval", "seed",
    "policy", "write_q_high", "write_q_low", "row_hit_first", "scan_limit",
    "scan_mode", "row_policy", "queue_capacity", "read_forwarding",
    "injection_block", "warmup",
    "fault.enabled", "fault.seed", "fault.endurance", "fault.sigma",
    "fault.initial_wear", "fault.max_retries", "fault.spare_rows",
    "fault.read_disturb",
    "tier.enabled", "tier.sets", "tier.ways", "tier.replacement",
    "tier.write_policy", "tier.hit_read", "tier.hit_write", "tier.port",
    "tier.fault.enabled", "tier.fault.seed", "tier.fault.rate",
};

// Classic two-row Levenshtein distance; the keys are short, so this is
// only ever called on the error path.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

void reject_unknown_keys(const KeyValueConfig& kv,
                         const std::vector<std::string>& harness_keys) {
  for (const auto& [key, value] : kv.entries()) {
    (void)value;
    const auto known = [&key](const std::string& k) { return k == key; };
    if (std::any_of(std::begin(kKnownKeys), std::end(kKnownKeys), known) ||
        std::any_of(harness_keys.begin(), harness_keys.end(), known)) {
      continue;
    }
    // Suggest the nearest valid key (config keys first, then the harness's
    // own keys) so a typo points at its likely target.
    std::string nearest;
    std::size_t best = std::string::npos;
    const auto consider = [&](const std::string& cand) {
      const std::size_t d = edit_distance(key, cand);
      if (d < best) {
        best = d;
        nearest = cand;
      }
    };
    for (const char* k : kKnownKeys) consider(k);
    for (const std::string& k : harness_keys) consider(k);
    throw std::invalid_argument("config: unknown key '" + key +
                                "' (did you mean '" + nearest + "'?)");
  }
}

[[noreturn]] void bad(const std::string& key, const std::string& value) {
  throw std::invalid_argument("config: bad value for " + key + ": " + value);
}

unsigned get_unsigned(const KeyValueConfig& kv, const std::string& key,
                      unsigned fallback) {
  if (!kv.has(key)) return fallback;
  const auto v = kv.get_int(key);
  if (!v || *v < 0) bad(key, kv.get_string_or(key, ""));
  return static_cast<unsigned>(*v);
}

Tick get_tick(const KeyValueConfig& kv, const std::string& key,
              Tick fallback) {
  if (!kv.has(key)) return fallback;
  const auto v = kv.get_int(key);
  if (!v || *v <= 0) bad(key, kv.get_string_or(key, ""));
  return static_cast<Tick>(*v);
}

}  // namespace

SimConfig apply_overrides(SimConfig cfg, const KeyValueConfig& kv,
                          const std::vector<std::string>& harness_keys) {
  reject_unknown_keys(kv, harness_keys);

  // Geometry.
  cfg.geom.channels = get_unsigned(kv, "channels", cfg.geom.channels);
  cfg.geom.ranks = get_unsigned(kv, "ranks", cfg.geom.ranks);
  cfg.geom.banks_per_rank = get_unsigned(kv, "banks", cfg.geom.banks_per_rank);
  cfg.geom.rows_per_bank = get_unsigned(kv, "rows", cfg.geom.rows_per_bank);
  cfg.geom.cols_per_row = get_unsigned(kv, "cols", cfg.geom.cols_per_row);
  cfg.geom.devices_per_rank =
      get_unsigned(kv, "devices", cfg.geom.devices_per_rank);
  cfg.geom.bits_per_col =
      get_unsigned(kv, "bits_per_col", cfg.geom.bits_per_col);
  // One burst-length knob: the geometry's line size and the bus-occupancy
  // model describe the same DDR3 burst, so "burst" sets both.
  cfg.geom.burst_length = get_unsigned(kv, "burst", cfg.geom.burst_length);
  cfg.timing.burst_length = get_unsigned(kv, "burst", cfg.timing.burst_length);
  if (kv.has("mapping")) {
    const std::string m = kv.get_string_or("mapping", "");
    if (m == "row:rank:bank:col") {
      cfg.geom.mapping = AddressMapping::kRowRankBankCol;
    } else if (m == "row:bank:rank:col") {
      cfg.geom.mapping = AddressMapping::kRowBankRankCol;
    } else if (m == "rank:bank:row:col") {
      cfg.geom.mapping = AddressMapping::kRankBankRowCol;
    } else {
      bad("mapping", m);
    }
  }

  // Timing.
  cfg.timing.row_read_ns = get_tick(kv, "row_read", cfg.timing.row_read_ns);
  cfg.timing.row_write_ns = get_tick(kv, "row_write", cfg.timing.row_write_ns);
  cfg.timing.reset_ns = get_tick(kv, "reset", cfg.timing.reset_ns);
  cfg.timing.set_ns = get_tick(kv, "set", cfg.timing.set_ns);
  cfg.timing.col_read_ns = get_tick(kv, "col_read", cfg.timing.col_read_ns);
  cfg.timing.refresh_period_ns =
      get_tick(kv, "refresh_period", cfg.timing.refresh_period_ns);
  cfg.timing.tag_check_ns = get_tick(kv, "tag_check", cfg.timing.tag_check_ns);
  cfg.timing.pause_resume_ns =
      get_tick(kv, "pause_resume", cfg.timing.pause_resume_ns);

  // Architecture.
  if (kv.has("arch")) {
    const std::string a = kv.get_string_or("arch", "");
    if (a == "pcm") {
      cfg.arch.kind = ArchKind::kBaseline;
    } else if (a == "wom") {
      cfg.arch.kind = ArchKind::kWomPcm;
    } else if (a == "refresh") {
      cfg.arch.kind = ArchKind::kRefreshWomPcm;
    } else if (a == "wcpcm") {
      cfg.arch.kind = ArchKind::kWcpcm;
    } else if (a == "fnw") {
      cfg.arch.kind = ArchKind::kFlipNWrite;
    } else if (a == "symmetric") {
      cfg.arch.kind = ArchKind::kSymmetric;
    } else {
      bad("arch", a);
    }
    // Selecting a legacy kind resets any explicit composition: "arch=" means
    // the canonical composition of that kind, regardless of key order (the
    // key/value store is unordered, so both orders must mean the same thing).
    cfg.arch.composition.reset();
  }
  if (kv.has("code")) cfg.arch.code = kv.get_string_or("code", cfg.arch.code);
  // Per-region code overrides; empty means "derive from code= (classic
  // kinds) or the family default (sectioned kinds)".
  if (kv.has("main.code")) {
    cfg.arch.main_code = kv.get_string_or("main.code", cfg.arch.main_code);
  }
  if (kv.has("cache.code")) {
    cfg.arch.cache_code = kv.get_string_or("cache.code", cfg.arch.cache_code);
  }
  if (kv.has("organization")) {
    const std::string o = kv.get_string_or("organization", "");
    if (o == "wide") {
      cfg.arch.organization = WomOrganization::kWideColumn;
    } else if (o == "hidden") {
      cfg.arch.organization = WomOrganization::kHiddenPage;
    } else {
      bad("organization", o);
    }
  }
  cfg.arch.rat_entries = get_unsigned(kv, "rat", cfg.arch.rat_entries);
  // Composition keys override individual axes of the (possibly canonical)
  // composition; validate_composition() rejects nonsense combinations with
  // an actionable message.
  if (kv.has("main.coding") || kv.has("cache.enabled") ||
      kv.has("cache.coding") || kv.has("refresh")) {
    Composition c = cfg.arch.composition.value_or(
        canonical_composition(cfg.arch.kind, cfg.arch.organization));
    // Invalid coding kinds list the valid ones: the axis gained cells
    // (polar, ts-constrained) that older configs will not know about.
    constexpr const char* kCodingKinds =
        "raw, symmetric, fnw, wom-wide, wom-hidden, polar, ts-constrained";
    if (kv.has("main.coding")) {
      const std::string v = kv.get_string_or("main.coding", "");
      if (!coding_kind_from_string(v, &c.main_coding)) {
        throw std::invalid_argument("config: bad value for main.coding: " + v +
                                    " (valid: " + kCodingKinds + ")");
      }
    }
    if (kv.has("cache.enabled")) {
      const auto v = kv.get_bool("cache.enabled");
      if (!v) bad("cache.enabled", kv.get_string_or("cache.enabled", ""));
      c.cache_enabled = *v;
    }
    if (kv.has("cache.coding")) {
      const std::string v = kv.get_string_or("cache.coding", "");
      if (!coding_kind_from_string(v, &c.cache_coding)) {
        throw std::invalid_argument("config: bad value for cache.coding: " +
                                    v + " (valid: " + kCodingKinds + ")");
      }
    }
    if (kv.has("refresh")) {
      const std::string v = kv.get_string_or("refresh", "");
      if (!refresh_kind_from_string(v, &c.refresh)) bad("refresh", v);
    }
    cfg.arch.composition = validate_composition(c);
  }
  if (kv.has("refresh_enabled")) {
    const auto v = kv.get_bool("refresh_enabled");
    if (!v) bad("refresh_enabled", kv.get_string_or("refresh_enabled", ""));
    cfg.refresh.enabled = *v;
  }
  if (kv.has("require_empty_queues")) {
    const auto v = kv.get_bool("require_empty_queues");
    if (!v) {
      bad("require_empty_queues",
          kv.get_string_or("require_empty_queues", ""));
    }
    cfg.refresh.require_empty_queues = *v;
  }
  if (kv.has("rth")) {
    const auto v = kv.get_double("rth");
    if (!v || *v < 0.0 || *v > 1.0) bad("rth", kv.get_string_or("rth", ""));
    cfg.refresh.threshold = *v;
  }
  if (kv.has("pausing")) {
    const auto v = kv.get_bool("pausing");
    if (!v) bad("pausing", kv.get_string_or("pausing", ""));
    cfg.refresh.write_pausing = *v;
  }
  if (kv.has("fnw_fast")) {
    const auto v = kv.get_double("fnw_fast");
    if (!v || *v < 0.0 || *v > 1.0) {
      bad("fnw_fast", kv.get_string_or("fnw_fast", ""));
    }
    cfg.arch.fnw_fast_fraction = *v;
  }
  if (kv.has("start_gap")) {
    const auto v = kv.get_bool("start_gap");
    if (!v) bad("start_gap", kv.get_string_or("start_gap", ""));
    cfg.arch.start_gap = *v;
  }
  cfg.arch.start_gap_interval =
      get_unsigned(kv, "start_gap_interval", cfg.arch.start_gap_interval);
  if (kv.has("seed")) {
    const auto v = kv.get_int("seed");
    if (!v) bad("seed", kv.get_string_or("seed", ""));
    cfg.arch.seed = static_cast<std::uint64_t>(*v);
  }

  // Fault injection.
  if (kv.has("fault.enabled")) {
    const auto v = kv.get_bool("fault.enabled");
    if (!v) bad("fault.enabled", kv.get_string_or("fault.enabled", ""));
    cfg.fault.enabled = *v;
  }
  if (kv.has("fault.seed")) {
    const auto v = kv.get_int("fault.seed");
    if (!v) bad("fault.seed", kv.get_string_or("fault.seed", ""));
    cfg.fault.seed = static_cast<std::uint64_t>(*v);
  }
  if (kv.has("fault.endurance")) {
    const auto v = kv.get_double("fault.endurance");
    if (!v || *v <= 0.0) {
      bad("fault.endurance", kv.get_string_or("fault.endurance", ""));
    }
    cfg.fault.endurance = *v;
  }
  if (kv.has("fault.sigma")) {
    const auto v = kv.get_double("fault.sigma");
    if (!v || *v < 0.0) bad("fault.sigma", kv.get_string_or("fault.sigma", ""));
    cfg.fault.sigma = *v;
  }
  if (kv.has("fault.initial_wear")) {
    const auto v = kv.get_double("fault.initial_wear");
    if (!v || *v < 0.0) {
      bad("fault.initial_wear", kv.get_string_or("fault.initial_wear", ""));
    }
    cfg.fault.initial_wear = *v;
  }
  if (kv.has("fault.max_retries")) {
    const auto v = kv.get_int("fault.max_retries");
    if (!v || *v < 1) {
      bad("fault.max_retries", kv.get_string_or("fault.max_retries", ""));
    }
    cfg.fault.max_retries = static_cast<unsigned>(*v);
  }
  cfg.fault.spare_rows =
      get_unsigned(kv, "fault.spare_rows", cfg.fault.spare_rows);
  if (kv.has("fault.read_disturb")) {
    const auto v = kv.get_double("fault.read_disturb");
    if (!v || *v < 0.0 || *v > 1.0) {
      bad("fault.read_disturb", kv.get_string_or("fault.read_disturb", ""));
    }
    cfg.fault.read_disturb = *v;
  }

  // DRAM front tier.
  if (kv.has("tier.enabled")) {
    const auto v = kv.get_bool("tier.enabled");
    if (!v) bad("tier.enabled", kv.get_string_or("tier.enabled", ""));
    cfg.tier.enabled = *v;
  }
  cfg.tier.sets = get_unsigned(kv, "tier.sets", cfg.tier.sets);
  if (cfg.tier.sets == 0) bad("tier.sets", "0");
  cfg.tier.ways = get_unsigned(kv, "tier.ways", cfg.tier.ways);
  if (cfg.tier.ways == 0) bad("tier.ways", "0");
  if (kv.has("tier.replacement")) {
    const std::string v = kv.get_string_or("tier.replacement", "");
    if (!replacement_kind_from_string(v, &cfg.tier.replacement)) {
      bad("tier.replacement", v);
    }
    if (cfg.tier.replacement == ReplacementKind::kBankTag) {
      throw std::invalid_argument(
          "config: tier.replacement=bank_tag is the WOM cache's row/bank "
          "scheme (select it with cache.enabled=true); the tier takes lru, "
          "fifo or random");
    }
  }
  if (kv.has("tier.write_policy")) {
    const std::string v = kv.get_string_or("tier.write_policy", "");
    if (!tier_write_policy_from_string(v, &cfg.tier.write_policy)) {
      bad("tier.write_policy", v);
    }
  }
  cfg.tier.timing.hit_read_ns =
      get_tick(kv, "tier.hit_read", cfg.tier.timing.hit_read_ns);
  cfg.tier.timing.hit_write_ns =
      get_tick(kv, "tier.hit_write", cfg.tier.timing.hit_write_ns);
  if (kv.has("tier.port")) {
    const auto v = kv.get_int("tier.port");
    if (!v || *v < 0) bad("tier.port", kv.get_string_or("tier.port", ""));
    cfg.tier.timing.port_ns = static_cast<Tick>(*v);
  }
  if (kv.has("tier.fault.enabled")) {
    const auto v = kv.get_bool("tier.fault.enabled");
    if (!v) {
      bad("tier.fault.enabled", kv.get_string_or("tier.fault.enabled", ""));
    }
    cfg.tier.fault.enabled = *v;
  }
  if (kv.has("tier.fault.seed")) {
    const auto v = kv.get_int("tier.fault.seed");
    if (!v) bad("tier.fault.seed", kv.get_string_or("tier.fault.seed", ""));
    cfg.tier.fault.seed = static_cast<std::uint64_t>(*v);
  }
  if (kv.has("tier.fault.rate")) {
    const auto v = kv.get_double("tier.fault.rate");
    if (!v || *v < 0.0 || *v > 1.0) {
      bad("tier.fault.rate", kv.get_string_or("tier.fault.rate", ""));
    }
    cfg.tier.fault.frame_fail_rate = *v;
  }

  // Controller.
  if (kv.has("policy")) {
    const std::string p = kv.get_string_or("policy", "");
    if (p == "fcfs") {
      cfg.sched.policy = SchedulingPolicy::kFcfs;
    } else if (p == "read-priority" || p == "readprio") {
      cfg.sched.policy = SchedulingPolicy::kReadPriority;
    } else {
      bad("policy", p);
    }
  }
  cfg.sched.write_q_high =
      get_unsigned(kv, "write_q_high", cfg.sched.write_q_high);
  cfg.sched.write_q_low =
      get_unsigned(kv, "write_q_low", cfg.sched.write_q_low);
  if (kv.has("row_hit_first")) {
    const auto v = kv.get_bool("row_hit_first");
    if (!v) bad("row_hit_first", kv.get_string_or("row_hit_first", ""));
    cfg.sched.row_hit_first = *v;
  }
  cfg.sched.scan_limit = get_unsigned(kv, "scan_limit", cfg.sched.scan_limit);
  if (kv.has("scan_mode")) {
    const std::string m = kv.get_string_or("scan_mode", "");
    if (m == "indexed") {
      cfg.sched.scan_mode = ScanMode::kIndexed;
    } else if (m == "reference") {
      cfg.sched.scan_mode = ScanMode::kReference;
    } else {
      bad("scan_mode", m);
    }
  }
  if (kv.has("row_policy")) {
    const std::string p = kv.get_string_or("row_policy", "");
    if (p == "open") {
      cfg.row_policy = RowPolicy::kOpen;
    } else if (p == "closed") {
      cfg.row_policy = RowPolicy::kClosed;
    } else {
      bad("row_policy", p);
    }
  }
  cfg.queue_capacity =
      get_unsigned(kv, "queue_capacity", cfg.queue_capacity);
  cfg.injection_block =
      get_unsigned(kv, "injection_block", cfg.injection_block);
  if (kv.has("read_forwarding")) {
    const auto v = kv.get_bool("read_forwarding");
    if (!v) bad("read_forwarding", kv.get_string_or("read_forwarding", ""));
    cfg.read_forwarding = *v;
  }
  if (kv.has("warmup")) {
    const auto v = kv.get_int("warmup");
    if (!v || *v < 0) bad("warmup", kv.get_string_or("warmup", ""));
    cfg.warmup_accesses = static_cast<std::uint64_t>(*v);
  }
  return cfg;
}

SimConfig load_config_file(const SimConfig& base, const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open config file: " + path);
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(f, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
  }
  return apply_overrides(base, KeyValueConfig::from_tokens(tokens));
}

std::string describe(const SimConfig& cfg) {
  std::ostringstream os;
  os << "channels=" << cfg.geom.channels << "\n"
     << "ranks=" << cfg.geom.ranks << "\n"
     << "banks=" << cfg.geom.banks_per_rank << "\n"
     << "rows=" << cfg.geom.rows_per_bank << "\n"
     << "cols=" << cfg.geom.cols_per_row << "\n"
     << "devices=" << cfg.geom.devices_per_rank << "\n"
     << "bits_per_col=" << cfg.geom.bits_per_col << "\n"
     << "burst=" << cfg.geom.burst_length << "\n"
     << "mapping=" << to_string(cfg.geom.mapping) << "\n"
     << "row_read=" << cfg.timing.row_read_ns << "\n"
     << "row_write=" << cfg.timing.row_write_ns << "\n"
     << "reset=" << cfg.timing.reset_ns << "\n"
     << "set=" << cfg.timing.set_ns << "\n"
     << "col_read=" << cfg.timing.col_read_ns << "\n"
     << "refresh_period=" << cfg.timing.refresh_period_ns << "\n"
     << "tag_check=" << cfg.timing.tag_check_ns << "\n"
     << "pause_resume=" << cfg.timing.pause_resume_ns << "\n";
  const char* arch = "pcm";
  switch (cfg.arch.kind) {
    case ArchKind::kBaseline:
      arch = "pcm";
      break;
    case ArchKind::kWomPcm:
      arch = "wom";
      break;
    case ArchKind::kRefreshWomPcm:
      arch = "refresh";
      break;
    case ArchKind::kWcpcm:
      arch = "wcpcm";
      break;
    case ArchKind::kFlipNWrite:
      arch = "fnw";
      break;
    case ArchKind::kSymmetric:
      arch = "symmetric";
      break;
  }
  os << "arch=" << arch << "\n"
     << "code=" << cfg.arch.code << "\n";
  // Empty region overrides mean "derive" and stay implicit: "main.code="
  // with no value would not tokenize back into a key/value pair anyway.
  if (!cfg.arch.main_code.empty()) {
    os << "main.code=" << cfg.arch.main_code << "\n";
  }
  if (!cfg.arch.cache_code.empty()) {
    os << "cache.code=" << cfg.arch.cache_code << "\n";
  }
  os << "organization="
     << (cfg.arch.organization == WomOrganization::kWideColumn ? "wide"
                                                               : "hidden")
     << "\n"
     << "rat=" << cfg.arch.rat_entries << "\n";
  if (cfg.arch.composition.has_value()) {
    // Emitted after "arch=" so a round-trip re-applies the explicit
    // composition on top of the kind's canonical one.
    const Composition& c = *cfg.arch.composition;
    os << "main.coding=" << to_string(c.main_coding) << "\n"
       << "cache.enabled=" << (c.cache_enabled ? "true" : "false") << "\n"
       << "cache.coding=" << to_string(c.cache_coding) << "\n"
       << "refresh=" << to_string(c.refresh) << "\n";
  }
  os << "refresh_enabled=" << (cfg.refresh.enabled ? "true" : "false")
     << "\n"
     << "rth=" << cfg.refresh.threshold << "\n"
     << "pausing=" << (cfg.refresh.write_pausing ? "true" : "false") << "\n"
     << "require_empty_queues="
     << (cfg.refresh.require_empty_queues ? "true" : "false") << "\n"
     << "policy="
     << (cfg.sched.policy == SchedulingPolicy::kFcfs ? "fcfs"
                                                     : "read-priority")
     << "\n"
     << "write_q_high=" << cfg.sched.write_q_high << "\n"
     << "write_q_low=" << cfg.sched.write_q_low << "\n"
     << "row_hit_first=" << (cfg.sched.row_hit_first ? "true" : "false")
     << "\n"
     << "scan_limit=" << cfg.sched.scan_limit << "\n"
     << "scan_mode=" << to_string(cfg.sched.scan_mode) << "\n"
     << "row_policy="
     << (cfg.row_policy == RowPolicy::kOpen ? "open" : "closed") << "\n"
     << "queue_capacity=" << cfg.queue_capacity << "\n"
     << "read_forwarding=" << (cfg.read_forwarding ? "true" : "false")
     << "\n"
     << "injection_block=" << cfg.injection_block << "\n"
     << "fnw_fast=" << cfg.arch.fnw_fast_fraction << "\n"
     << "start_gap=" << (cfg.arch.start_gap ? "true" : "false") << "\n"
     << "start_gap_interval=" << cfg.arch.start_gap_interval << "\n"
     << "seed=" << cfg.arch.seed << "\n"
     << "fault.enabled=" << (cfg.fault.enabled ? "true" : "false") << "\n"
     << "fault.seed=" << cfg.fault.seed << "\n"
     << "fault.endurance=" << cfg.fault.endurance << "\n"
     << "fault.sigma=" << cfg.fault.sigma << "\n"
     << "fault.initial_wear=" << cfg.fault.initial_wear << "\n"
     << "fault.max_retries=" << cfg.fault.max_retries << "\n"
     << "fault.spare_rows=" << cfg.fault.spare_rows << "\n"
     << "fault.read_disturb=" << cfg.fault.read_disturb << "\n"
     << "tier.enabled=" << (cfg.tier.enabled ? "true" : "false") << "\n"
     << "tier.sets=" << cfg.tier.sets << "\n"
     << "tier.ways=" << cfg.tier.ways << "\n"
     << "tier.replacement=" << to_string(cfg.tier.replacement) << "\n"
     << "tier.write_policy=" << to_string(cfg.tier.write_policy) << "\n"
     << "tier.hit_read=" << cfg.tier.timing.hit_read_ns << "\n"
     << "tier.hit_write=" << cfg.tier.timing.hit_write_ns << "\n"
     << "tier.port=" << cfg.tier.timing.port_ns << "\n"
     << "tier.fault.enabled=" << (cfg.tier.fault.enabled ? "true" : "false")
     << "\n"
     << "tier.fault.seed=" << cfg.tier.fault.seed << "\n"
     << "tier.fault.rate=" << cfg.tier.fault.frame_fail_rate << "\n";
  if (cfg.warmup_accesses.has_value()) {
    os << "warmup=" << *cfg.warmup_accesses << "\n";
  }
  return os.str();
}

}  // namespace wompcm

#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/perf.h"

namespace wompcm {

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {}

SimResult Simulator::run(TraceSource& trace) {
  std::unique_ptr<Architecture> arch =
      make_architecture(cfg_.arch, cfg_.geom, cfg_.timing);

  SimResult result;
  result.arch_name = arch->name();
  result.capacity_overhead = arch->capacity_overhead();

  ControllerConfig ccfg;
  ccfg.geom = cfg_.geom;
  ccfg.timing = cfg_.timing;
  ccfg.sched = cfg_.sched;
  ccfg.refresh = cfg_.refresh;
  ccfg.row_policy = cfg_.row_policy;
  ccfg.queue_capacity = cfg_.queue_capacity;
  ccfg.read_forwarding = cfg_.read_forwarding;

  MemoryController ctrl(ccfg, *arch, result.stats);
  AddressMapper mapper(cfg_.geom);

  Tick now = 0;
  Tick trace_clock = 0;
  std::uint64_t next_id = 1;
  const std::uint64_t warmup = cfg_.warmup_accesses.value_or(0);
  std::optional<Transaction> pending;

  std::uint64_t trace_gen_ns = 0;
  const std::uint64_t codec_ns_start = perf::codec_ns();
  const std::uint64_t loop_start_ns = perf::now_ns();

  auto fetch = [&]() -> std::optional<Transaction> {
    const std::uint64_t t0 = perf::now_ns();
    const auto rec = trace.next();
    if (!rec) {
      trace_gen_ns += perf::now_ns() - t0;
      return std::nullopt;
    }
    trace_clock += rec->gap;
    Transaction tx;
    tx.id = next_id++;
    tx.addr = rec->addr;
    tx.dec = mapper.decode(rec->addr);
    tx.type = rec->type;
    tx.arrival = trace_clock;
    // Warmup semantics: the budget counts *transactions*, reads and writes
    // jointly, in trace order — the first `warmup` accesses of either kind
    // run unrecorded to reach steady state. run_benchmark() rejects budgets
    // >= the trace length, which would record nothing.
    tx.record = tx.id > warmup;
    trace_gen_ns += perf::now_ns() - t0;
    return tx;
  };

  pending = fetch();

  while (pending.has_value() || !ctrl.drained()) {
    Tick t_arrival = kNeverTick;
    if (pending.has_value() && ctrl.can_accept()) {
      t_arrival = std::max(pending->arrival, now);
    }
    const Tick t_ctrl = ctrl.next_event_after(now);
    const Tick t = std::min(t_arrival, t_ctrl);
    if (t == kNeverTick) break;  // quiescent: nothing can ever happen
    now = t;

    // Deliver all arrivals due at or before `now` while the queue accepts
    // them. An arrival held back by back-pressure is timestamped with its
    // actual acceptance time (the CPU stalled; memory latency starts when
    // the controller sees the request).
    while (pending.has_value() && ctrl.can_accept() &&
           pending->arrival <= now) {
      Transaction tx = *pending;
      if (tx.arrival < now) {
        ++result.deferred_injections;
        tx.arrival = now;
      }
      if (tx.type == AccessType::kRead) {
        ++result.injected_reads;
      } else {
        ++result.injected_writes;
      }
      ctrl.enqueue(tx);
      pending = fetch();
    }

    ctrl.tick(now);
  }

  // Attribute the event loop: trace generation is timed directly, codec
  // time accumulates in a thread-local counter (this run stays on one
  // thread), and the controller gets the rest.
  result.phases.total_ns = perf::now_ns() - loop_start_ns;
  result.phases.trace_gen_ns = trace_gen_ns;
  result.phases.codec_ns = perf::codec_ns() - codec_ns_start;
  const std::uint64_t accounted = trace_gen_ns + result.phases.codec_ns;
  result.phases.controller_ns =
      result.phases.total_ns > accounted ? result.phases.total_ns - accounted
                                         : 0;

  result.end_time = ctrl.last_completion();
  result.refresh_commands = ctrl.refresh_engine().commands();
  result.refresh_rows = ctrl.refresh_engine().rows_refreshed();
  result.stats.counters.merge(arch->counters());
  result.energy_read_pj = arch->energy().read_pj();
  result.energy_write_pj = arch->energy().write_pj();
  result.energy_refresh_pj = arch->energy().refresh_pj();
  result.max_line_wear = arch->wear().max_line_wear();
  result.mean_line_wear = arch->wear().mean_line_wear();
  result.lifetime_years = arch->wear().lifetime_years(result.end_time);
  result.banks.reserve(ctrl.banks().size());
  for (const Bank& b : ctrl.banks()) {
    result.banks.push_back(SimResult::BankUtilization{
        b.busy_time(), b.ops(), b.row_hits(), b.pauses()});
  }
  return result;
}

double SimResult::max_bank_utilization() const {
  if (end_time == 0) return 0.0;
  Tick busiest = 0;
  for (const BankUtilization& b : banks) {
    if (b.busy_time > busiest) busiest = b.busy_time;
  }
  return static_cast<double>(busiest) / static_cast<double>(end_time);
}

double SimResult::row_hit_rate() const {
  std::uint64_t ops = 0, hits = 0;
  for (const BankUtilization& b : banks) {
    ops += b.ops;
    hits += b.row_hits;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

}  // namespace wompcm

#include "sim/simulator.h"

#include "sim/service.h"

namespace wompcm {

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {}

SimResult Simulator::run(TraceSource& trace) {
  // A batch run is one service session drained to completion: SimService
  // (sim/service.h) owns the event loop, back-pressure, and end-of-run
  // publishing; the serial backend supplies the exact pre-service memory
  // system wiring.
  SimService service(cfg_);
  return service.run_to_completion(trace);
}

void SimResult::collect(const MetricsRegistry& reg) {
  metrics = reg;
  end_time = reg.counter("sim.end_time");
  injected_reads = reg.counter("sim.injected_reads");
  injected_writes = reg.counter("sim.injected_writes");
  deferred_injections = reg.counter("sim.deferred_injections");
  refresh_commands = reg.counter("refresh.commands");
  refresh_rows = reg.counter("refresh.rows");
  capacity_overhead = reg.gauge("arch.capacity_overhead");
  energy_read_pj = reg.gauge("energy.read_pj");
  energy_write_pj = reg.gauge("energy.write_pj");
  energy_refresh_pj = reg.gauge("energy.refresh_pj");
  max_line_wear = reg.gauge("wear.max_line");
  mean_line_wear = reg.gauge("wear.mean_line");
  lifetime_years = reg.gauge("wear.lifetime_years");
  fault_injected = reg.counter("fault.injected");
  fault_retries = reg.counter("fault.retries");
  fault_demoted_writes = reg.counter("fault.demoted_writes");
  fault_remapped_rows = reg.counter("fault.remapped_rows");
  fault_dead_rows = reg.counter("fault.dead_rows");
  fault_read_disturbs = reg.counter("fault.read_disturbs");
  tier_read_hits = reg.counter("tier.read_hits");
  tier_read_misses = reg.counter("tier.read_misses");
  tier_write_hits = reg.counter("tier.write_hits");
  tier_write_misses = reg.counter("tier.write_misses");
  tier_evictions = reg.counter("tier.evictions");
  tier_writebacks = reg.counter("tier.writebacks");
}

namespace {

bool in_class(const SimResult::BankUtilization& b,
              SimResult::BankClass cls) {
  switch (cls) {
    case SimResult::BankClass::kAll:
      return true;
    case SimResult::BankClass::kMain:
      return !b.cache;
    case SimResult::BankClass::kCache:
      return b.cache;
  }
  return true;
}

}  // namespace

double SimResult::max_bank_utilization(BankClass cls) const {
  if (end_time == 0) return 0.0;
  Tick busiest = 0;
  for (const BankUtilization& b : banks) {
    if (in_class(b, cls) && b.busy_time > busiest) busiest = b.busy_time;
  }
  return static_cast<double>(busiest) / static_cast<double>(end_time);
}

double SimResult::row_hit_rate(BankClass cls) const {
  std::uint64_t ops = 0, hits = 0;
  for (const BankUtilization& b : banks) {
    if (!in_class(b, cls)) continue;
    ops += b.ops;
    hits += b.row_hits;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

}  // namespace wompcm

#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/event_queue.h"
#include "common/perf.h"
#include "sim/injector.h"

namespace wompcm {

Simulator::Simulator(const SimConfig& cfg) : cfg_(cfg) {}

SimResult Simulator::run(TraceSource& trace) {
  std::unique_ptr<Architecture> arch =
      make_architecture(cfg_.arch, cfg_.geom, cfg_.timing, cfg_.fault);

  SimResult result;
  result.arch_name = arch->name();

  MemorySystemConfig mcfg;
  mcfg.geom = cfg_.geom;
  mcfg.timing = cfg_.timing;
  mcfg.sched = cfg_.sched;
  mcfg.refresh = cfg_.refresh;
  mcfg.row_policy = cfg_.row_policy;
  mcfg.queue_capacity = cfg_.queue_capacity;
  mcfg.read_forwarding = cfg_.read_forwarding;
  mcfg.tier = cfg_.tier;

  MemorySystem mem(mcfg, *arch, result.stats);
  AddressMapper mapper(cfg_.geom);

  Clock clock;
  const std::uint64_t warmup = cfg_.warmup_accesses.value_or(0);

  std::uint64_t injected_reads = 0;
  std::uint64_t injected_writes = 0;
  std::vector<std::uint64_t> deferred(mem.num_channels(), 0);

  const std::uint64_t codec_ns_start = perf::codec_ns();
  const std::uint64_t loop_start_ns = perf::now_ns();

  // Batched front end (sim/injector.h): fetch + decode a block of records
  // at a time; peek()/pop() yield the identical one-at-a-time sequence.
  TraceInjector inj(trace, mapper, warmup, cfg_.injection_block);
  const Transaction* pending = inj.peek();

  while (pending != nullptr || !mem.drained()) {
    Tick t_arrival = kNeverTick;
    if (pending != nullptr && mem.can_accept(pending->dec)) {
      t_arrival = std::max(pending->arrival, clock.now());
    }
    if (!clock.advance({t_arrival, mem.next_event_after(clock.now())})) {
      break;  // quiescent: nothing can ever happen
    }
    const Tick now = clock.now();

    // Deliver all arrivals due at or before `now` while the target
    // channel's queue accepts them. An arrival held back by back-pressure
    // is timestamped with its actual acceptance time (the CPU stalled;
    // memory latency starts when the controller sees the request).
    while (pending != nullptr && mem.can_accept(pending->dec) &&
           pending->arrival <= now) {
      Transaction tx = *pending;
      if (tx.arrival < now) {
        ++deferred[tx.dec.channel];
        tx.arrival = now;
      }
      if (tx.type == AccessType::kRead) {
        ++injected_reads;
      } else {
        ++injected_writes;
      }
      mem.enqueue(tx);
      inj.pop();
      pending = inj.peek();
    }

    mem.tick(now);
  }

  // Attribute the event loop: trace generation is timed directly, codec
  // time accumulates in a thread-local counter (this run stays on one
  // thread), and the controller gets the rest.
  result.phases.total_ns = perf::now_ns() - loop_start_ns;
  result.phases.trace_gen_ns = perf::ticks_to_ns(inj.trace_gen_ticks());
  result.phases.codec_ns = perf::codec_ns() - codec_ns_start;
  const std::uint64_t accounted =
      result.phases.trace_gen_ns + result.phases.codec_ns;
  result.phases.controller_ns =
      result.phases.total_ns > accounted ? result.phases.total_ns - accounted
                                         : 0;

  // Every layer publishes its end-of-run scalars into one registry; the
  // result is then collected in a single pass instead of copied field by
  // field from each component.
  MetricsRegistry reg;
  reg.set_counter("sim.injected_reads", injected_reads);
  reg.set_counter("sim.injected_writes", injected_writes);
  std::uint64_t deferred_total = 0;
  for (unsigned c = 0; c < mem.num_channels(); ++c) {
    reg.set_counter(channel_metric(c, "deferred_injections"), deferred[c]);
    deferred_total += deferred[c];
  }
  reg.set_counter("sim.deferred_injections", deferred_total);
  mem.publish_metrics(reg);
  arch->publish_metrics(reg, mem.last_completion());
  result.collect(reg);

  result.stats.counters.merge(arch->counters());
  result.banks.reserve(arch->num_resources());
  for (const MemorySystem::BankSnapshot& s : mem.banks()) {
    result.banks.push_back(SimResult::BankUtilization{
        s.bank->busy_time(), s.bank->ops(), s.bank->row_hits(),
        s.bank->pauses(), s.is_cache});
  }
  return result;
}

void SimResult::collect(const MetricsRegistry& reg) {
  metrics = reg;
  end_time = reg.counter("sim.end_time");
  injected_reads = reg.counter("sim.injected_reads");
  injected_writes = reg.counter("sim.injected_writes");
  deferred_injections = reg.counter("sim.deferred_injections");
  refresh_commands = reg.counter("refresh.commands");
  refresh_rows = reg.counter("refresh.rows");
  capacity_overhead = reg.gauge("arch.capacity_overhead");
  energy_read_pj = reg.gauge("energy.read_pj");
  energy_write_pj = reg.gauge("energy.write_pj");
  energy_refresh_pj = reg.gauge("energy.refresh_pj");
  max_line_wear = reg.gauge("wear.max_line");
  mean_line_wear = reg.gauge("wear.mean_line");
  lifetime_years = reg.gauge("wear.lifetime_years");
  fault_injected = reg.counter("fault.injected");
  fault_retries = reg.counter("fault.retries");
  fault_demoted_writes = reg.counter("fault.demoted_writes");
  fault_remapped_rows = reg.counter("fault.remapped_rows");
  fault_dead_rows = reg.counter("fault.dead_rows");
  fault_read_disturbs = reg.counter("fault.read_disturbs");
  tier_read_hits = reg.counter("tier.read_hits");
  tier_read_misses = reg.counter("tier.read_misses");
  tier_write_hits = reg.counter("tier.write_hits");
  tier_write_misses = reg.counter("tier.write_misses");
  tier_evictions = reg.counter("tier.evictions");
  tier_writebacks = reg.counter("tier.writebacks");
}

namespace {

bool in_class(const SimResult::BankUtilization& b,
              SimResult::BankClass cls) {
  switch (cls) {
    case SimResult::BankClass::kAll:
      return true;
    case SimResult::BankClass::kMain:
      return !b.cache;
    case SimResult::BankClass::kCache:
      return b.cache;
  }
  return true;
}

}  // namespace

double SimResult::max_bank_utilization(BankClass cls) const {
  if (end_time == 0) return 0.0;
  Tick busiest = 0;
  for (const BankUtilization& b : banks) {
    if (in_class(b, cls) && b.busy_time > busiest) busiest = b.busy_time;
  }
  return static_cast<double>(busiest) / static_cast<double>(end_time);
}

double SimResult::row_hit_rate(BankClass cls) const {
  std::uint64_t ops = 0, hits = 0;
  for (const BankUtilization& b : banks) {
    if (!in_class(b, cls)) continue;
    ops += b.ops;
    hits += b.row_hits;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

}  // namespace wompcm

// Diffs two perf_trace outputs (BENCH_singlerun.json schema) and prints
// per-scenario speedups: new rate / old rate per platform. The CI
// perf-regression gate runs it against the committed JSON:
//
//   perf_diff old=BENCH_singlerun.json new=build/bench_now.json \
//             min_ratio=0.7 gate=true
//
// gate=true exits 1 when any scenario's ratio falls below min_ratio —
// unless either file was recorded with degraded_environment:true (a
// single-hardware-thread host whose wall-clock contends with the rest of
// the machine), in which case the gate only warns: those numbers measure
// correctness, not speed.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"

namespace {

using wompcm::KeyValueConfig;

struct Scenario {
  std::string name;
  double rate = 0.0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_diff: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal scan of the self-describing perf_trace schema: each key directly
// under "runs" is a scenario object whose first rate field is
// "accesses_per_sec". (Matches the baseline_rate() scanner in
// bench/perf_trace.cc; neither needs a JSON library for this shape.)
std::vector<Scenario> scenarios(const std::string& json,
                                const std::string& path) {
  std::vector<Scenario> out;
  const std::size_t runs = json.find("\"runs\"");
  if (runs == std::string::npos) {
    std::fprintf(stderr,
                 "perf_diff: %s has no \"runs\" section (expects the "
                 "perf_trace/BENCH_singlerun.json schema)\n",
                 path.c_str());
    std::exit(2);
  }
  // The embedded "baseline" section repeats the scenario names: stop there.
  std::size_t end = json.find("\"baseline\"", runs);
  if (end == std::string::npos) end = json.size();
  std::size_t pos = json.find('{', runs);
  while (pos != std::string::npos) {
    const std::size_t q = json.find('"', pos + 1);
    if (q == std::string::npos || q >= end) break;
    const std::size_t q2 = json.find('"', q + 1);
    if (q2 == std::string::npos || q2 >= end) break;
    Scenario s;
    s.name = json.substr(q + 1, q2 - q - 1);
    const std::size_t rate = json.find("\"accesses_per_sec\":", q2);
    if (rate == std::string::npos || rate >= end) break;
    s.rate = std::atof(json.c_str() + rate + 19);
    out.push_back(s);
    // Skip the rest of this scenario object (the only nested braces are the
    // one-line phases_ns object that follows the rate field).
    pos = json.find('}', rate);
    if (pos != std::string::npos) pos = json.find('}', pos + 1);
  }
  return out;
}

bool degraded(const std::string& json) {
  return json.find("\"degraded_environment\": true") != std::string::npos;
}

double find_rate(const std::vector<Scenario>& v, const std::string& name) {
  for (const Scenario& s : v) {
    if (s.name == name) return s.rate;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const std::string old_path = args.get_string_or("old", "");
  const std::string new_path = args.get_string_or("new", "");
  const double min_ratio = args.get_double_or("min_ratio", 0.0);
  const bool gate = args.get_string_or("gate", "false") == "true";
  if (old_path.empty() || new_path.empty()) {
    std::fprintf(stderr,
                 "usage: perf_diff old=FILE new=FILE [min_ratio=R] "
                 "[gate=true]\n");
    return 2;
  }

  const std::string old_json = read_file(old_path);
  const std::string new_json = read_file(new_path);
  const std::vector<Scenario> old_runs = scenarios(old_json, old_path);
  const std::vector<Scenario> new_runs = scenarios(new_json, new_path);
  const bool warn_only = degraded(old_json) || degraded(new_json);

  std::printf("perf_diff: %s -> %s\n", old_path.c_str(), new_path.c_str());
  if (warn_only) {
    std::printf("  (degraded environment recorded: single-hardware-thread "
                "host; ratios are informational, gate warns only)\n");
  }

  bool regressed = false;
  for (const Scenario& s : new_runs) {
    const double base = find_rate(old_runs, s.name);
    if (base <= 0.0) {
      std::printf("  %-16s %12.0f acc/s   (no baseline entry)\n",
                  s.name.c_str(), s.rate);
      continue;
    }
    const double ratio = s.rate / base;
    const bool below = min_ratio > 0.0 && ratio < min_ratio;
    regressed = regressed || below;
    std::printf("  %-16s %12.0f -> %12.0f acc/s   %.3fx%s\n", s.name.c_str(),
                base, s.rate, ratio, below ? "  REGRESSION" : "");
  }
  for (const Scenario& s : old_runs) {
    if (find_rate(new_runs, s.name) == 0.0) {
      std::printf("  %-16s dropped from new results\n", s.name.c_str());
    }
  }

  if (regressed) {
    if (gate && !warn_only) {
      std::fprintf(stderr,
                   "perf_diff: FAIL: at least one scenario below %.2fx of "
                   "the committed baseline\n",
                   min_ratio);
      return 1;
    }
    std::printf("perf_diff: WARNING: at least one scenario below %.2fx of "
                "the committed baseline%s\n",
                min_ratio, warn_only ? " (not gating: degraded)" : "");
  }
  return 0;
}

// trace2bin: convert memory traces between the text and binary formats.
//
//   trace2bin <input> <output>          text (or binary) -> binary
//   trace2bin --text <input> <output>   binary (or text) -> text
//
// The binary format (trace/file_source.h) is the 8-byte "WOMPCMT1" magic
// followed by packed little-endian { u64 gap, u8 type, u64 addr } records;
// the simulator ingests it zero-copy through MmapTraceSource. Input format
// is auto-detected, so the tool also round-trips and re-normalizes traces
// (comments and whitespace in text inputs are dropped).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "trace/binary_source.h"
#include "trace/file_source.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--text] <input-trace> <output-trace>\n"
               "  converts a trace to the packed binary format\n"
               "  (--text: convert to the line-oriented text format)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using wompcm::TraceWriter;

  TraceWriter::Format format = TraceWriter::Format::kBinary;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--text") == 0) {
    format = TraceWriter::Format::kText;
    ++arg;
  }
  if (argc - arg != 2) return usage(argv[0]);
  const std::string in_path = argv[arg];
  const std::string out_path = argv[arg + 1];

  try {
    const auto in = wompcm::open_trace(in_path);
    TraceWriter out(out_path, format);
    std::uint64_t records = 0;
    while (const auto rec = in->next()) {
      out.write(*rec);
      ++records;
    }
    out.close();
    std::fprintf(stderr, "%s: wrote %llu records (%s)\n", out_path.c_str(),
                 static_cast<unsigned long long>(records),
                 format == TraceWriter::Format::kBinary ? "binary" : "text");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace2bin: %s\n", e.what());
    return 1;
  }
  return 0;
}

// womd: the service-mode simulation driver. Opens one SimService session
// per input stream — trace files and/or synthetic benchmark profiles —
// feeds them chunk by chunk through the streaming submit/step API under
// back-pressure, and reports the per-stream books next to the aggregate
// result. The multi-stream merge happens inside the service, so the
// output is bit-identical to a batch run over the pre-merged trace.
//
//   womd traces=a.trc,b.trc jobs=4
//   womd profiles=401.bzip2,429.mcf,471.omnetpp,483.xalancbmk
//        accesses=100000 config=configs/dualchannel.cfg
//
// Arguments:
//   traces=A,B,...     trace files (text or binary), one session each
//   profiles=P,Q,...   synthetic profile names (trace/profiles.h), one
//                      session each; stream s draws from
//                      seed ^ (golden-ratio * (s + 1))
//   accesses=N         records per profile stream (default 100000)
//   seed=S             base seed for profile streams (default 42)
//   jobs=J             backend workers; >1 shards by channel (default 1)
//   chunk=B            records per submit (default 256)
//   config=FILE        key=value config file (configs/*.cfg)
//   any config key     overrides, same dialect as every harness
//                      (channels=2 arch=wcpcm fault.enabled=true ...)
//   --list-codes       print the registered code families (k/n/t/rate/
//                      overhead/wear/LUT) and exit
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/config_io.h"
#include "sim/experiment.h"
#include "sim/service.h"
#include "trace/binary_source.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"
#include "wom/registry.h"

namespace {

using namespace wompcm;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= csv.size()) {
    const std::size_t comma = csv.find(',', at);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > at) out.push_back(csv.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

// Stream name shown in the report: the trace file's basename, or the
// profile name.
std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int usage() {
  std::fprintf(stderr,
               "usage: womd [traces=a.trc,b.trc] [profiles=P,Q,...] "
               "[accesses=N] [seed=S]\n"
               "            [jobs=J] [chunk=B] [config=FILE] "
               "[config-key=value ...]\n"
               "       womd --list-codes\n"
               "  at least one trace or profile stream is required\n");
  return 2;
}

// Discovery surface for the coding registry: every name main.code= /
// cache.code= (or the legacy code=) accepts, with its parameter sheet.
int list_codes() {
  std::printf("%-22s %4s %5s %4s %10s %9s %6s %5s %5s\n", "code", "k", "n",
              "t", "rate tk/n", "overhead", "wear", "LUT", "inv");
  for (const std::string& name : known_block_codec_names()) {
    const CodeInfo info = code_info(name);
    if (!info.valid) continue;
    std::printf("%-22s %4u %5u %4u %10.3f %9.2f %6.2f %5s %5s\n",
                info.name.c_str(), info.data_bits, info.wits, info.max_writes,
                static_cast<double>(info.max_writes) * info.data_bits /
                    info.wits,
                info.overhead, info.wear_bound, info.lut ? "yes" : "no",
                info.inverted ? "yes" : "no");
  }
  std::printf(
      "\nclassic kinds (main.coding=wom-wide|wom-hidden) take symbol codes\n"
      "via code=; the sectioned families take main.code=polar-* /\n"
      "main.code=tsc-* under main.coding=polar / ts-constrained.\n"
      "Architectures require the inverted (-inv) variants.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list-codes") return list_codes();
  }
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const std::vector<std::string> traces =
      split_list(args.get_string_or("traces", ""));
  const std::vector<std::string> profiles =
      split_list(args.get_string_or("profiles", ""));
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 1));
  const auto chunk = static_cast<std::size_t>(args.get_int_or("chunk", 256));
  if (traces.empty() && profiles.empty()) return usage();

  try {
    SimConfig cfg = paper_config();
    if (args.has("config")) {
      cfg = load_config_file(cfg, args.get_string_or("config", ""));
    }
    cfg = apply_overrides(cfg, args,
                          {"traces", "profiles", "accesses", "seed", "jobs",
                           "chunk", "config"});

    // One feed per stream: trace files first, then profile streams, in
    // the order given — that order is the merge tie-break.
    struct Feed {
      std::string label;
      std::unique_ptr<TraceSource> src;
      SessionId id = 0;
      std::vector<TraceRecord> buf;
      std::size_t off = 0;  // accepted prefix of buf
      bool eof = false;
      bool closed = false;
    };
    std::vector<Feed> feeds;
    for (const std::string& path : traces) {
      Feed fd;
      fd.label = basename_of(path);
      fd.src = open_trace(path);
      feeds.push_back(std::move(fd));
    }
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const auto profile = find_profile(profiles[p]);
      if (!profile.has_value()) {
        std::fprintf(stderr, "womd: unknown profile: %s\n",
                     profiles[p].c_str());
        return 1;
      }
      const unsigned s = static_cast<unsigned>(traces.size() + p);
      Feed fd;
      fd.label = profiles[p];
      fd.src = std::make_unique<SyntheticTraceSource>(
          *profile, cfg.geom, seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)),
          accesses);
      feeds.push_back(std::move(fd));
    }

    std::printf("womd: %zu stream(s) on %u-channel %s, jobs=%u, chunk=%zu\n",
                feeds.size(), cfg.geom.channels, to_string(cfg.arch.kind),
                jobs, chunk);

    ServiceOptions opts;
    opts.jobs = jobs;
    SimService svc(cfg, opts);
    for (Feed& fd : feeds) {
      StreamSpec spec;
      spec.name = fd.label;
      spec.capacity = 4 * chunk;
      fd.id = svc.open_session(spec);
    }

    // The streaming pump: refill each session's chunk when drained,
    // resubmit back-pressured tails, close at end of trace, step.
    std::size_t live = feeds.size();
    while (live > 0) {
      for (Feed& fd : feeds) {
        if (fd.closed) continue;
        if (fd.off == fd.buf.size() && !fd.eof) {
          fd.buf.resize(chunk);
          const std::size_t n = fd.src->next_block(fd.buf.data(), chunk);
          fd.buf.resize(n);
          fd.off = 0;
          fd.eof = n < chunk;
        }
        if (fd.off < fd.buf.size()) {
          fd.off += svc.submit(fd.id, fd.buf.data() + fd.off,
                               fd.buf.size() - fd.off)
                        .accepted;
        }
        if (fd.eof && fd.off == fd.buf.size()) {
          svc.close_session(fd.id);
          fd.closed = true;
          --live;
        }
      }
      svc.step();
    }

    // Per-stream books before drain retires the sessions.
    std::printf("\n%-18s %10s %10s %10s %8s %12s %12s %9s %9s\n", "stream",
                "submitted", "reads", "writes", "deferred", "avg_read_ns",
                "avg_write_ns", "fwd", "tier");
    for (const Feed& fd : feeds) {
      const StreamStats s = svc.poll(fd.id);
      std::printf("%-18s %10llu %10llu %10llu %8llu %12.1f %12.1f %9llu "
                  "%9llu\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.submitted),
                  static_cast<unsigned long long>(s.injected_reads),
                  static_cast<unsigned long long>(s.injected_writes),
                  static_cast<unsigned long long>(s.deferred), s.avg_read_ns,
                  s.avg_write_ns,
                  static_cast<unsigned long long>(s.reads_forwarded),
                  static_cast<unsigned long long>(s.tier_absorbed));
    }

    const SimResult r = svc.drain();
    std::printf("\naggregate (%s):\n", r.arch_name.c_str());
    std::printf("  simulated time:   %llu ns\n",
                static_cast<unsigned long long>(r.end_time));
    std::printf("  injected:         %llu reads, %llu writes "
                "(%llu deferred)\n",
                static_cast<unsigned long long>(r.injected_reads),
                static_cast<unsigned long long>(r.injected_writes),
                static_cast<unsigned long long>(r.deferred_injections));
    std::printf("  avg read latency: %.1f ns\n",
                r.stats.demand_read_latency.mean());
    std::printf("  avg write latency: %.1f ns\n",
                r.stats.demand_write_latency.mean());
    std::printf("  energy:           %.1f uJ write, %.1f uJ read\n",
                r.energy_write_pj * 1e-6, r.energy_read_pj * 1e-6);
    if (r.fault_injected > 0) {
      std::printf("  faults:           %llu injected, %llu retries, "
                  "%llu dead rows\n",
                  static_cast<unsigned long long>(r.fault_injected),
                  static_cast<unsigned long long>(r.fault_retries),
                  static_cast<unsigned long long>(r.fault_dead_rows));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "womd: %s\n", e.what());
    return 1;
  }
  return 0;
}
